//! The wire protocol: line-delimited text over TCP.
//!
//! Every request is one line of whitespace-separated tokens (`LOAD` is
//! followed by its entry lines); every response is either a single line or
//! a `RESULT … END` block.  The protocol is deliberately hand-rollable
//! from `netcat`:
//!
//! ```text
//! →  HELLO                           ←  OK matlangd proto=2 caps=delta,errcodes,semirings,execbatch,obs,capacity
//! →  INSTANCE g adaptive bool        ←  OK instance g adaptive bool
//! →  DIM g n 4                       ←  OK dim n 4
//! →  LOAD g G 4 4 3                  ←  (reads 3 entry lines) OK load G nnz=3
//! →  0 1 1
//! →  1 2 1
//! →  2 0 1
//! →  PREPARE g (G * G)              ←  OK prepared 0 plan=built statement=new nodes=2 fp=…
//! →  EXEC g 0                        ←  RESULT 4 4 2 hits=0 misses=2 … delta=0 fallbacks=0 nodes=2 fp=…
//! ←  0 2 1                               (nnz entry lines)
//! ←  END
//! →  UPDATE g G 3 3 1                ←  OK update G entries=1 invalidated=0 delta=applied patched=2
//! ```
//!
//! # Versioning
//!
//! `HELLO` answers with a capability banner (`proto=2
//! caps=delta,errcodes,semirings,execbatch,obs,capacity`) so clients can discover
//! what the server speaks before relying on it.  Proto 2 extends proto 1
//! *additively*: every proto-1 token keeps its position and meaning, new
//! information rides in appended `key=value` tokens (`delta=`,
//! `fallbacks=`, `fp=`, `trace=` in `RESULT` headers;
//! `delta=`/`patched=`/`reason=` in `UPDATE` replies), and the typed
//! [`ResponseHeader`] parser **ignores unknown keys** so the same
//! tolerance carries forward.
//!
//! The `obs` capability adds a family of introspection verbs, each
//! answered with a line-counted block (`<TAG> <n>`, then `n` payload
//! lines, then `END`):
//!
//! ```text
//! →  METRICS                          ←  METRICS <n> … END   (Prometheus text exposition)
//! →  METRICS WINDOW 60                ←  METRICS <n> … END   (windowed deltas/rates/quantiles)
//! →  EXPLAIN g (G * G)                ←  EXPLAIN <n> … END   (rewritten DAG, estimates, eligibility)
//! →  PROFILE g (G * G)                ←  PROFILE <n> … END   (executes once; per-node time/nnz/hits)
//! →  STATS g                          ←  STATS <n> … END     (observed vs. estimated, drift, re-plans)
//! →  SLOWLOG 10                       ←  SLOWLOG <n> … END   (recent slow queries + captured forensics)
//! →  HEALTH                           ←  OK health status=ok|pressure bytes=… budget=… conns=… …
//! →  TOP 10                           ←  TOP <n> … END       (instances ranked by bytes/exec-time)
//! →  TRACE EXPORT 32                  ←  TRACE <n> … END     (Chrome trace-event JSON array)
//! ```
//!
//! and a `trace=<id>` (hex) token on `RESULT` headers carrying the
//! session-assigned observability trace id of the request.  Error replies
//! are `ERR <CODE> <message>` with a stable code per category
//! ([`crate::ServerError::code`]); the message is guaranteed newline-free
//! (pinned by `tests/single_line_errors.rs`), so it ships verbatim.
//!
//! Numbers use Rust's shortest-round-trip `f64` formatting, so values
//! survive a wire round trip **bit-identically** — the property the
//! integration suite pins against `matlang_core::evaluate`.

use crate::error::ServerError;
use matlang_engine::ExecStats;
use std::io::{BufRead, Write};

/// The protocol revision announced by `HELLO`.
pub const PROTOCOL_VERSION: u32 = 2;

/// The capability tokens announced by `HELLO`, comma-joined on the wire.
pub const CAPABILITIES: &[&str] = &[
    "delta",
    "errcodes",
    "semirings",
    "execbatch",
    "obs",
    "capacity",
    "persist",
];

/// The semiring an instance computes over, as named on the wire.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SemiringKind {
    /// `real` — the field ℝ over `f64` (the default).
    #[default]
    Real,
    /// `bool` — the Boolean semiring (∨, ∧); idempotent, so insert-only
    /// updates take the exact delta path.
    Boolean,
    /// `nat` — the natural numbers (+, ×).
    Nat,
    /// `minplus` — the tropical min-plus semiring (min, +); idempotent,
    /// so weight-lowering updates take the exact delta path.
    MinPlus,
}

impl SemiringKind {
    /// Parses a wire token (`real`, `bool`, `nat`, `minplus`).
    pub fn parse(token: &str) -> Option<SemiringKind> {
        match token {
            "real" => Some(SemiringKind::Real),
            "bool" => Some(SemiringKind::Boolean),
            "nat" => Some(SemiringKind::Nat),
            "minplus" => Some(SemiringKind::MinPlus),
            _ => None,
        }
    }

    /// The wire token for this semiring.
    pub fn name(&self) -> &'static str {
        match self {
            SemiringKind::Real => "real",
            SemiringKind::Boolean => "bool",
            SemiringKind::Nat => "nat",
            SemiringKind::MinPlus => "minplus",
        }
    }
}

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// `HELLO` — protocol version and capability discovery.
    Hello,
    /// `INSTANCE <name> [dense|adaptive] [real|bool|nat|minplus]` —
    /// create a named instance (backend defaults to `adaptive`, semiring
    /// to `real`).
    Instance {
        name: String,
        adaptive: bool,
        semiring: SemiringKind,
    },
    /// `DIM <instance> <sym> <n>` — assign a size symbol.
    Dim {
        instance: String,
        sym: String,
        value: usize,
    },
    /// `LOAD <instance> <var> <rows> <cols> <nnz>` — followed by `nnz`
    /// entry lines `i j value`.
    Load {
        instance: String,
        var: String,
        rows: usize,
        cols: usize,
        nnz: usize,
    },
    /// `GEN <instance> <var> <sym> er <avg_degree> <seed>` or
    /// `GEN <instance> <var> <sym> pl <avg_degree> <alpha> <seed>` —
    /// generate a random sparse graph over the dimension named by `sym`.
    Gen {
        instance: String,
        var: String,
        sym: String,
        kind: GenKind,
    },
    /// `PREPARE <instance> <query text…>` — parse, typecheck, plan.
    Prepare { instance: String, text: String },
    /// `EXEC <instance> <qid>` — run one prepared query.
    Exec { instance: String, qid: usize },
    /// `EXECBATCH <instance> <qid>…` — run several prepared queries.
    ExecBatch { instance: String, qids: Vec<usize> },
    /// `QUERY <instance> <query text…>` — one-shot parse + plan + eval
    /// (no prepared statement, no persistent cache); the baseline the
    /// `server_throughput` bench compares `EXEC` against.
    Query { instance: String, text: String },
    /// `UPDATE <instance> <var> (<i> <j> <value>)+` — point updates routed
    /// through delta maintenance when exact, cache invalidation otherwise.
    Update {
        instance: String,
        var: String,
        entries: Vec<(usize, usize, f64)>,
    },
    /// `LIST` — instance inventory (name, backend, semiring, cumulative
    /// delta/fallback counters).
    List,
    /// `METRICS [WINDOW <secs>]` — Prometheus-style text exposition of
    /// the process-wide metrics registry; with `WINDOW <secs>`, windowed
    /// counter deltas/rates and histogram quantiles over roughly the last
    /// `secs` seconds instead.
    Metrics { window: Option<u64> },
    /// `STATS <instance>` — per-instance observed vs. estimated
    /// statistics: per-variable planned/current/observed nnz, drift
    /// against the plan-time snapshot, and the re-plan counter.
    Stats { instance: String },
    /// `SLOWLOG [n]` — the most recent (up to `n`, default 16) queries
    /// that crossed the slow threshold (`MATLANG_SLOW_MS`), each with its
    /// captured plan/profile forensics.
    Slowlog { n: Option<usize> },
    /// `HEALTH` — one-line capacity/readiness summary: accounted bytes vs
    /// the `MATLANG_MEM_BUDGET` soft budget, connection count, slow-query
    /// and delta-fallback rates, and `status=ok|pressure`.
    Health,
    /// `TOP [n]` — the top `n` (default all) instances ranked by accounted
    /// bytes then cumulative `EXEC` time, one line each with the byte
    /// attribution and memo-cache residency columns.
    Top { n: Option<usize> },
    /// `TRACE EXPORT [n]` — the newest `n` (default 32) finished traces
    /// from the trace ring, rendered as a Chrome trace-event JSON array
    /// (`chrome://tracing` / Perfetto).
    TraceExport { n: Option<usize> },
    /// `EXPLAIN <instance> <query text…>` — parse, typecheck and plan the
    /// query (without registering a prepared statement) and render the
    /// rewritten DAG with per-node cost estimates and cache/delta
    /// eligibility.
    Explain { instance: String, text: String },
    /// `PROFILE <instance> <query text…>` — execute the query once and
    /// return a per-node wall-time / nnz / cache-hit breakdown.
    Profile { instance: String, text: String },
    /// `DROP <instance>` — remove an instance.
    Drop { instance: String },
    /// `SAVE <instance> [path]` — write a snapshot now: to the data
    /// directory (compacting a persisted instance's WAL into it), or
    /// exported to an explicit whitespace-free path.
    Save {
        instance: String,
        path: Option<String>,
    },
    /// `RESTORE <instance> <path>` — create a new instance from a
    /// snapshot file (fails if the name is taken; the instance is not
    /// automatically persisted).
    Restore { instance: String, path: String },
    /// `PERSIST <instance> on|off` — enable durability (initial snapshot
    /// plus write-ahead-logged `UPDATE`s) or disable it and remove the
    /// on-disk artifacts.
    Persist { instance: String, on: bool },
    /// `WALSTAT <instance>` — one-line durability figures: persisted
    /// flag, WAL sequence/record/byte counts, snapshot size, compaction
    /// threshold.
    Walstat { instance: String },
    /// `PING` — liveness check.
    Ping,
    /// `QUIT` — close this connection.
    Quit,
}

/// Random-graph generator selection for [`Request::Gen`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GenKind {
    /// Erdős–Rényi with the given average degree.
    ErdosRenyi { avg_degree: f64, seed: u64 },
    /// Power-law with the given average degree and exponent.
    PowerLaw {
        avg_degree: f64,
        alpha: f64,
        seed: u64,
    },
}

fn parse_num<T: std::str::FromStr>(tok: Option<&str>, what: &str) -> Result<T, String> {
    let tok = tok.ok_or_else(|| format!("expected {what}, got nothing"))?;
    tok.parse::<T>()
        .map_err(|_| format!("expected {what}, got `{tok}`"))
}

impl Request {
    /// Parses one request line (without its trailing newline).
    pub fn parse(line: &str) -> Result<Request, String> {
        let mut tokens = line.split_whitespace();
        let command = tokens.next().ok_or_else(|| "empty command".to_string())?;
        match command.to_ascii_uppercase().as_str() {
            "HELLO" => Ok(Request::Hello),
            "INSTANCE" => {
                let name = parse_num::<String>(tokens.next(), "instance name")?;
                let backend = tokens.next().unwrap_or("adaptive");
                let adaptive = match backend {
                    "dense" => false,
                    "adaptive" => true,
                    other => return Err(format!("expected backend dense|adaptive, got `{other}`")),
                };
                let semiring = match tokens.next() {
                    None => SemiringKind::default(),
                    Some(token) => SemiringKind::parse(token).ok_or_else(|| {
                        format!("expected semiring real|bool|nat|minplus, got `{token}`")
                    })?,
                };
                Ok(Request::Instance {
                    name,
                    adaptive,
                    semiring,
                })
            }
            "DIM" => Ok(Request::Dim {
                instance: parse_num(tokens.next(), "instance name")?,
                sym: parse_num(tokens.next(), "size symbol")?,
                value: parse_num(tokens.next(), "dimension value")?,
            }),
            "LOAD" => Ok(Request::Load {
                instance: parse_num(tokens.next(), "instance name")?,
                var: parse_num(tokens.next(), "variable name")?,
                rows: parse_num(tokens.next(), "row count")?,
                cols: parse_num(tokens.next(), "column count")?,
                nnz: parse_num(tokens.next(), "entry count")?,
            }),
            "GEN" => {
                let instance = parse_num(tokens.next(), "instance name")?;
                let var = parse_num(tokens.next(), "variable name")?;
                let sym = parse_num(tokens.next(), "size symbol")?;
                let kind = match tokens.next() {
                    Some("er") => GenKind::ErdosRenyi {
                        avg_degree: parse_num(tokens.next(), "average degree")?,
                        seed: parse_num(tokens.next(), "seed")?,
                    },
                    Some("pl") => GenKind::PowerLaw {
                        avg_degree: parse_num(tokens.next(), "average degree")?,
                        alpha: parse_num(tokens.next(), "exponent")?,
                        seed: parse_num(tokens.next(), "seed")?,
                    },
                    other => {
                        return Err(format!(
                            "expected generator er|pl, got `{}`",
                            other.unwrap_or("nothing")
                        ))
                    }
                };
                Ok(Request::Gen {
                    instance,
                    var,
                    sym,
                    kind,
                })
            }
            "PREPARE" | "QUERY" | "EXPLAIN" | "PROFILE" => {
                let instance: String = parse_num(tokens.next(), "instance name")?;
                let text = tokens.collect::<Vec<_>>().join(" ");
                if text.is_empty() {
                    return Err("expected query text, got nothing".to_string());
                }
                match command.to_ascii_uppercase().as_str() {
                    "PREPARE" => Ok(Request::Prepare { instance, text }),
                    "QUERY" => Ok(Request::Query { instance, text }),
                    "EXPLAIN" => Ok(Request::Explain { instance, text }),
                    _ => Ok(Request::Profile { instance, text }),
                }
            }
            "EXEC" => Ok(Request::Exec {
                instance: parse_num(tokens.next(), "instance name")?,
                qid: parse_num(tokens.next(), "query id")?,
            }),
            "EXECBATCH" => {
                let instance: String = parse_num(tokens.next(), "instance name")?;
                let qids: Vec<usize> = tokens
                    .map(|t| {
                        t.parse::<usize>()
                            .map_err(|_| format!("expected query id, got `{t}`"))
                    })
                    .collect::<Result<_, _>>()?;
                if qids.is_empty() {
                    return Err("expected at least one query id, got none".to_string());
                }
                Ok(Request::ExecBatch { instance, qids })
            }
            "UPDATE" => {
                let instance: String = parse_num(tokens.next(), "instance name")?;
                let var: String = parse_num(tokens.next(), "variable name")?;
                let rest: Vec<&str> = tokens.collect();
                // An empty batch is legal (a no-op the store short-circuits);
                // only a *partial* triple is malformed.
                if rest.len() % 3 != 0 {
                    return Err(
                        "expected (row col value) triples, got a partial triple".to_string()
                    );
                }
                let entries = rest
                    .chunks(3)
                    .map(|t| -> Result<_, String> {
                        Ok((
                            parse_num::<usize>(Some(t[0]), "row")?,
                            parse_num::<usize>(Some(t[1]), "column")?,
                            parse_num::<f64>(Some(t[2]), "value")?,
                        ))
                    })
                    .collect::<Result<_, _>>()?;
                Ok(Request::Update {
                    instance,
                    var,
                    entries,
                })
            }
            "LIST" => Ok(Request::List),
            "METRICS" => match tokens.next() {
                None => Ok(Request::Metrics { window: None }),
                Some(token) if token.eq_ignore_ascii_case("WINDOW") => Ok(Request::Metrics {
                    window: Some(parse_num(tokens.next(), "window seconds")?),
                }),
                Some(other) => Err(format!("expected WINDOW <secs>, got `{other}`")),
            },
            "STATS" => Ok(Request::Stats {
                instance: parse_num(tokens.next(), "instance name")?,
            }),
            "SLOWLOG" => Ok(Request::Slowlog {
                n: match tokens.next() {
                    None => None,
                    tok => Some(parse_num(tok, "entry count")?),
                },
            }),
            "HEALTH" => match tokens.next() {
                None => Ok(Request::Health),
                Some(other) => Err(format!("expected end of HEALTH, got `{other}`")),
            },
            "TOP" => Ok(Request::Top {
                n: match tokens.next() {
                    None => None,
                    tok => Some(parse_num(tok, "instance count")?),
                },
            }),
            "TRACE" => match tokens.next() {
                Some(token) if token.eq_ignore_ascii_case("EXPORT") => Ok(Request::TraceExport {
                    n: match tokens.next() {
                        None => None,
                        tok => Some(parse_num(tok, "trace count")?),
                    },
                }),
                other => Err(format!(
                    "expected TRACE EXPORT [n], got `{}`",
                    other.unwrap_or("nothing")
                )),
            },
            "DROP" => Ok(Request::Drop {
                instance: parse_num(tokens.next(), "instance name")?,
            }),
            "SAVE" => Ok(Request::Save {
                instance: parse_num(tokens.next(), "instance name")?,
                path: tokens.next().map(String::from),
            }),
            "RESTORE" => Ok(Request::Restore {
                instance: parse_num(tokens.next(), "instance name")?,
                path: parse_num(tokens.next(), "snapshot path")?,
            }),
            "PERSIST" => Ok(Request::Persist {
                instance: parse_num(tokens.next(), "instance name")?,
                on: match tokens.next() {
                    Some(token) if token.eq_ignore_ascii_case("on") => true,
                    Some(token) if token.eq_ignore_ascii_case("off") => false,
                    other => {
                        return Err(format!(
                            "expected on|off, got `{}`",
                            other.unwrap_or("nothing")
                        ))
                    }
                },
            }),
            "WALSTAT" => Ok(Request::Walstat {
                instance: parse_num(tokens.next(), "instance name")?,
            }),
            "PING" => Ok(Request::Ping),
            "QUIT" => Ok(Request::Quit),
            other => Err(format!("unknown command `{other}`")),
        }
    }
}

/// Executor counters as echoed in a `RESULT` header — the typed wire twin
/// of [`matlang_engine::ExecStats`], plus the server-side delta
/// maintenance counters that the executor itself never sees.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStatsWire {
    /// Plan nodes answered from the persistent memo cache (`hits=`).
    pub cache_hits: u64,
    /// Plan nodes computed by a kernel (`misses=`).
    pub cache_misses: u64,
    /// Cache entries dropped by invalidation (`invalidations=`).
    pub invalidations: u64,
    /// Products that ran on the parallel kernel (`parallel=`).
    pub parallel_products: u64,
    /// Elementwise ops that ran on the parallel kernel (`elementwise=`).
    pub parallel_elementwise: u64,
    /// Products that ran on a fused diagonal-scaling kernel (`fused=`).
    pub fused_products: u64,
    /// Cumulative cached nodes patched by delta propagation on this
    /// instance (`delta=`).
    pub delta_patches: u64,
    /// Cumulative `UPDATE`s that fell back to invalidation on this
    /// instance (`fallbacks=`).
    pub delta_fallbacks: u64,
}

impl From<ExecStats> for ExecStatsWire {
    fn from(stats: ExecStats) -> ExecStatsWire {
        ExecStatsWire {
            cache_hits: stats.cache_hits,
            cache_misses: stats.cache_misses,
            invalidations: stats.invalidations,
            parallel_products: stats.parallel_products,
            parallel_elementwise: stats.parallel_elementwise,
            fused_products: stats.fused_products,
            delta_patches: stats.delta_patches,
            delta_fallbacks: 0,
        }
    }
}

/// A parsed `RESULT` header line — the typed replacement for the stringly
/// `key=value` scan.  [`ResponseHeader::parse`] **ignores unknown keys**
/// and defaults missing ones to zero, so a proto-2 client keeps working
/// against both older and newer servers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResponseHeader {
    /// Result row count.
    pub rows: usize,
    /// Result column count.
    pub cols: usize,
    /// Number of entry lines that follow the header.
    pub nnz: usize,
    /// The typed stat counters.
    pub stats: ExecStatsWire,
    /// DAG node count of the plan the query ran against (`nodes=`).
    pub plan_nodes: usize,
    /// [`matlang_engine::Plan::structure_fingerprint`] of that plan
    /// (`fp=`, hex), identifying the rewrite variant that produced the
    /// result.
    pub fingerprint: u64,
    /// The session-assigned observability trace id for this request
    /// (`trace=`, hex; 0 when tracing was inactive).
    pub trace: u64,
}

impl ResponseHeader {
    /// Parses a `RESULT` header line.  Unknown `key=value` tokens are
    /// ignored; known keys with malformed values are an error.
    pub fn parse(header: &str) -> Result<ResponseHeader, String> {
        let mut tokens = header.split_whitespace();
        if tokens.next() != Some("RESULT") {
            return Err(format!("expected RESULT, got `{header}`"));
        }
        let mut out = ResponseHeader {
            rows: parse_num(tokens.next(), "row count")?,
            cols: parse_num(tokens.next(), "column count")?,
            nnz: parse_num(tokens.next(), "entry count")?,
            ..ResponseHeader::default()
        };
        for token in tokens {
            let Some((key, value)) = token.split_once('=') else {
                return Err(format!("malformed stat token `{token}`"));
            };
            let num = |what: &str| -> Result<u64, String> {
                value
                    .parse::<u64>()
                    .map_err(|_| format!("malformed {what} `{token}`"))
            };
            match key {
                "hits" => out.stats.cache_hits = num("hits")?,
                "misses" => out.stats.cache_misses = num("misses")?,
                "invalidations" => out.stats.invalidations = num("invalidations")?,
                "parallel" => out.stats.parallel_products = num("parallel")?,
                "elementwise" => out.stats.parallel_elementwise = num("elementwise")?,
                "fused" => out.stats.fused_products = num("fused")?,
                "delta" => out.stats.delta_patches = num("delta")?,
                "fallbacks" => out.stats.delta_fallbacks = num("fallbacks")?,
                "nodes" => out.plan_nodes = num("nodes")? as usize,
                "fp" => {
                    out.fingerprint = u64::from_str_radix(value, 16)
                        .map_err(|_| format!("malformed fingerprint `{token}`"))?;
                }
                "trace" => {
                    out.trace = u64::from_str_radix(value, 16)
                        .map_err(|_| format!("malformed trace id `{token}`"))?;
                }
                _ => {} // future keys: tolerated by design
            }
        }
        Ok(out)
    }

    fn write(&self, out: &mut impl Write) -> std::io::Result<()> {
        writeln!(
            out,
            "RESULT {} {} {} hits={} misses={} invalidations={} parallel={} elementwise={} \
             fused={} delta={} fallbacks={} nodes={} fp={:016x} trace={:016x}",
            self.rows,
            self.cols,
            self.nnz,
            self.stats.cache_hits,
            self.stats.cache_misses,
            self.stats.invalidations,
            self.stats.parallel_products,
            self.stats.parallel_elementwise,
            self.stats.fused_products,
            self.stats.delta_patches,
            self.stats.delta_fallbacks,
            self.plan_nodes,
            self.fingerprint,
            self.trace,
        )
    }
}

/// The result of executing one query, as shipped over the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct WireResult {
    /// Result row count.
    pub rows: usize,
    /// Result column count.
    pub cols: usize,
    /// The non-zero entries `(row, col, value)` in row-major order.
    pub entries: Vec<(usize, usize, f64)>,
    /// Typed stat counters for this request.
    pub stats: ExecStatsWire,
    /// DAG node count of the plan the query ran against — the denominator
    /// for cache-hit-ratio assertions.
    pub plan_nodes: usize,
    /// Structure fingerprint of that plan (0 when unreported).
    pub fingerprint: u64,
    /// Observability trace id of the request that produced this result
    /// (0 when tracing was inactive).
    pub trace: u64,
}

impl WireResult {
    /// The header line this result serializes under.
    pub fn header(&self) -> ResponseHeader {
        ResponseHeader {
            rows: self.rows,
            cols: self.cols,
            nnz: self.entries.len(),
            stats: self.stats,
            plan_nodes: self.plan_nodes,
            fingerprint: self.fingerprint,
            trace: self.trace,
        }
    }
}

/// Collapses a message to a single protocol-safe line.  The workspace
/// error types are already newline-free (pinned by the
/// `single_line_errors` test); this is defense in depth for foreign text
/// such as I/O error strings.
pub fn single_line(message: &str) -> String {
    message
        .chars()
        .map(|c| if c.is_control() { ' ' } else { c })
        .collect()
}

/// Writes an `ERR <CODE> <message>` reply.
pub fn write_err(out: &mut impl Write, error: &ServerError) -> std::io::Result<()> {
    writeln!(
        out,
        "ERR {} {}",
        error.code(),
        single_line(&error.to_string())
    )
}

/// Writes a `RESULT … END` block.
pub fn write_result(out: &mut impl Write, result: &WireResult) -> std::io::Result<()> {
    result.header().write(out)?;
    for (i, j, v) in &result.entries {
        writeln!(out, "{i} {j} {v}")?;
    }
    writeln!(out, "END")
}

/// Reads a `RESULT … END` block (the client side of [`write_result`]).
/// `header` is the already-consumed `RESULT` line.
pub fn read_result(header: &str, input: &mut impl BufRead) -> Result<WireResult, String> {
    let header = ResponseHeader::parse(header)?;
    // `nnz` comes off the wire: clamp the pre-allocation (the vector
    // still grows to the real entry count).
    let mut entries = Vec::with_capacity(header.nnz.min(1 << 16));
    let mut line = String::new();
    for _ in 0..header.nnz {
        line.clear();
        if input.read_line(&mut line).map_err(|e| e.to_string())? == 0 {
            return Err("connection closed mid-result".to_string());
        }
        let mut t = line.split_whitespace();
        entries.push((
            parse_num::<usize>(t.next(), "entry row")?,
            parse_num::<usize>(t.next(), "entry column")?,
            parse_num::<f64>(t.next(), "entry value")?,
        ));
    }
    line.clear();
    input.read_line(&mut line).map_err(|e| e.to_string())?;
    if line.trim() != "END" {
        return Err(format!("expected END, got `{}`", line.trim()));
    }
    Ok(WireResult {
        rows: header.rows,
        cols: header.cols,
        entries,
        stats: header.stats,
        plan_nodes: header.plan_nodes,
        fingerprint: header.fingerprint,
        trace: header.trace,
    })
}

/// Writes a line-counted block reply: `<TAG> <n>`, then the `n` payload
/// lines, then `END` — the framing shared by `METRICS`, `EXPLAIN` and
/// `PROFILE` replies.
pub fn write_lines_block(out: &mut impl Write, tag: &str, lines: &[String]) -> std::io::Result<()> {
    writeln!(out, "{tag} {}", lines.len())?;
    for line in lines {
        writeln!(out, "{}", single_line(line))?;
    }
    writeln!(out, "END")
}

/// Reads the body of a line-counted block reply (the client side of
/// [`write_lines_block`]).  `header` is the already-consumed `<TAG> <n>`
/// line; the expected tag is checked against it.
pub fn read_lines_block(
    header: &str,
    tag: &str,
    input: &mut impl BufRead,
) -> Result<Vec<String>, String> {
    let mut tokens = header.split_whitespace();
    if tokens.next() != Some(tag) {
        return Err(format!("expected {tag}, got `{header}`"));
    }
    let count: usize = parse_num(tokens.next(), "line count")?;
    let mut lines = Vec::with_capacity(count.min(1 << 16));
    let mut line = String::new();
    for _ in 0..count {
        line.clear();
        if input.read_line(&mut line).map_err(|e| e.to_string())? == 0 {
            return Err("connection closed mid-block".to_string());
        }
        lines.push(line.trim_end_matches(['\r', '\n']).to_string());
    }
    line.clear();
    input.read_line(&mut line).map_err(|e| e.to_string())?;
    if line.trim() != "END" {
        return Err(format!("expected END, got `{}`", line.trim()));
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_core_commands() {
        assert_eq!(Request::parse("HELLO").unwrap(), Request::Hello);
        assert_eq!(
            Request::parse("INSTANCE g dense").unwrap(),
            Request::Instance {
                name: "g".into(),
                adaptive: false,
                semiring: SemiringKind::Real,
            }
        );
        assert_eq!(
            Request::parse("instance g").unwrap(),
            Request::Instance {
                name: "g".into(),
                adaptive: true,
                semiring: SemiringKind::Real,
            }
        );
        assert_eq!(
            Request::parse("INSTANCE g adaptive bool").unwrap(),
            Request::Instance {
                name: "g".into(),
                adaptive: true,
                semiring: SemiringKind::Boolean,
            }
        );
        assert_eq!(
            Request::parse("INSTANCE g dense minplus").unwrap(),
            Request::Instance {
                name: "g".into(),
                adaptive: false,
                semiring: SemiringKind::MinPlus,
            }
        );
        assert_eq!(
            Request::parse("DIM g n 10").unwrap(),
            Request::Dim {
                instance: "g".into(),
                sym: "n".into(),
                value: 10
            }
        );
        assert_eq!(
            Request::parse("PREPARE g (G * G)").unwrap(),
            Request::Prepare {
                instance: "g".into(),
                text: "(G * G)".into()
            }
        );
        assert_eq!(
            Request::parse("EXECBATCH g 0 1 2").unwrap(),
            Request::ExecBatch {
                instance: "g".into(),
                qids: vec![0, 1, 2]
            }
        );
        assert_eq!(
            Request::parse("UPDATE g G 0 1 2.5 3 4 0").unwrap(),
            Request::Update {
                instance: "g".into(),
                var: "G".into(),
                entries: vec![(0, 1, 2.5), (3, 4, 0.0)],
            }
        );
        assert_eq!(Request::parse("PING").unwrap(), Request::Ping);
        assert_eq!(
            Request::parse("METRICS").unwrap(),
            Request::Metrics { window: None }
        );
        assert_eq!(
            Request::parse("METRICS WINDOW 60").unwrap(),
            Request::Metrics { window: Some(60) }
        );
        assert_eq!(
            Request::parse("STATS g").unwrap(),
            Request::Stats {
                instance: "g".into()
            }
        );
        assert_eq!(
            Request::parse("SLOWLOG").unwrap(),
            Request::Slowlog { n: None }
        );
        assert_eq!(
            Request::parse("SLOWLOG 5").unwrap(),
            Request::Slowlog { n: Some(5) }
        );
        assert_eq!(Request::parse("HEALTH").unwrap(), Request::Health);
        assert_eq!(Request::parse("TOP").unwrap(), Request::Top { n: None });
        assert_eq!(
            Request::parse("TOP 3").unwrap(),
            Request::Top { n: Some(3) }
        );
        assert_eq!(
            Request::parse("TRACE EXPORT").unwrap(),
            Request::TraceExport { n: None }
        );
        assert_eq!(
            Request::parse("trace export 8").unwrap(),
            Request::TraceExport { n: Some(8) }
        );
        assert_eq!(
            Request::parse("EXPLAIN g (G * G)").unwrap(),
            Request::Explain {
                instance: "g".into(),
                text: "(G * G)".into()
            }
        );
        assert_eq!(
            Request::parse("PROFILE g (G * G)").unwrap(),
            Request::Profile {
                instance: "g".into(),
                text: "(G * G)".into()
            }
        );
        // An empty UPDATE batch parses (the store answers it as a no-op).
        assert_eq!(
            Request::parse("UPDATE g G").unwrap(),
            Request::Update {
                instance: "g".into(),
                var: "G".into(),
                entries: vec![],
            }
        );
    }

    #[test]
    fn parses_persistence_commands() {
        // One round trip per persistence verb: the wire line parses to
        // the typed variant that renders the same semantics back.
        assert_eq!(
            Request::parse("SAVE g").unwrap(),
            Request::Save {
                instance: "g".into(),
                path: None
            }
        );
        assert_eq!(
            Request::parse("SAVE g /tmp/g.snap").unwrap(),
            Request::Save {
                instance: "g".into(),
                path: Some("/tmp/g.snap".into())
            }
        );
        assert_eq!(
            Request::parse("RESTORE h /tmp/g.snap").unwrap(),
            Request::Restore {
                instance: "h".into(),
                path: "/tmp/g.snap".into()
            }
        );
        assert_eq!(
            Request::parse("PERSIST g on").unwrap(),
            Request::Persist {
                instance: "g".into(),
                on: true
            }
        );
        assert_eq!(
            Request::parse("persist g OFF").unwrap(),
            Request::Persist {
                instance: "g".into(),
                on: false
            }
        );
        assert_eq!(
            Request::parse("WALSTAT g").unwrap(),
            Request::Walstat {
                instance: "g".into()
            }
        );
        assert!(Request::parse("RESTORE h").is_err());
        assert!(Request::parse("PERSIST g maybe").is_err());
        assert!(Request::parse("PERSIST g").is_err());
        assert!(Request::parse("WALSTAT").is_err());
    }

    #[test]
    fn eproto_messages_use_expected_got_phrasing() {
        for (line, needle) in [
            ("DIM g n ten", "expected dimension value, got `ten`"),
            ("EXEC g", "expected query id, got nothing"),
            (
                "INSTANCE g columnar",
                "expected backend dense|adaptive, got `columnar`",
            ),
            ("PERSIST g maybe", "expected on|off, got `maybe`"),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert_eq!(err, needle, "for `{line}`");
        }
    }

    #[test]
    fn rejects_malformed_commands() {
        assert!(Request::parse("").is_err());
        assert!(Request::parse("FROB g").is_err());
        assert!(Request::parse("INSTANCE g columnar").is_err());
        assert!(Request::parse("INSTANCE g dense complex").is_err());
        assert!(Request::parse("EXEC g notanumber").is_err());
        assert!(Request::parse("EXECBATCH g").is_err());
        assert!(Request::parse("UPDATE g G 0 1").is_err());
        assert!(Request::parse("PREPARE g").is_err());
        assert!(Request::parse("EXPLAIN g").is_err());
        assert!(Request::parse("PROFILE g").is_err());
        assert!(Request::parse("GEN g G n frob 1 2").is_err());
        assert!(Request::parse("METRICS FROB").is_err());
        assert!(Request::parse("METRICS WINDOW abc").is_err());
        assert!(Request::parse("STATS").is_err());
        assert!(Request::parse("SLOWLOG many").is_err());
        assert!(Request::parse("HEALTH now").is_err());
        assert!(Request::parse("TOP many").is_err());
        assert!(Request::parse("TRACE").is_err());
        assert!(Request::parse("TRACE IMPORT").is_err());
        assert!(Request::parse("TRACE EXPORT many").is_err());
    }

    #[test]
    fn lines_blocks_round_trip() {
        let lines = vec![
            "# TYPE exec_total counter".to_string(),
            "exec_total 3".into(),
        ];
        let mut wire = Vec::new();
        write_lines_block(&mut wire, "METRICS", &lines).unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("METRICS 2\n"));
        assert!(text.ends_with("END\n"));
        let mut lines_iter = text.lines();
        let header = lines_iter.next().unwrap();
        let rest = lines_iter.collect::<Vec<_>>().join("\n") + "\n";
        let parsed = read_lines_block(header, "METRICS", &mut rest.as_bytes()).unwrap();
        assert_eq!(parsed, lines);
        assert!(read_lines_block(header, "EXPLAIN", &mut rest.as_bytes()).is_err());
    }

    #[test]
    fn headers_carry_the_trace_token() {
        let header = ResponseHeader {
            rows: 1,
            cols: 1,
            trace: 0xabc,
            ..ResponseHeader::default()
        };
        let mut wire = Vec::new();
        header.write(&mut wire).unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.contains("trace=0000000000000abc"), "{text}");
        let parsed = ResponseHeader::parse(text.trim()).unwrap();
        assert_eq!(parsed.trace, 0xabc);
        // Pre-obs headers without the token default to "no trace".
        let legacy = ResponseHeader::parse("RESULT 1 1 0 hits=1").unwrap();
        assert_eq!(legacy.trace, 0);
        assert!(ResponseHeader::parse("RESULT 1 1 0 trace=zz").is_err());
    }

    #[test]
    fn result_blocks_round_trip() {
        let result = WireResult {
            rows: 2,
            cols: 3,
            entries: vec![(0, 1, 1.5), (1, 2, -0.25), (1, 0, 3e300)],
            stats: ExecStatsWire {
                cache_hits: 7,
                cache_misses: 2,
                invalidations: 1,
                parallel_products: 1,
                parallel_elementwise: 0,
                fused_products: 3,
                delta_patches: 11,
                delta_fallbacks: 4,
            },
            plan_nodes: 9,
            fingerprint: 0xdead_beef_cafe_f00d,
            trace: 0x1234_5678_9abc_def0,
        };
        let mut wire = Vec::new();
        write_result(&mut wire, &result).unwrap();
        let text = String::from_utf8(wire).unwrap();
        let mut lines = text.lines();
        let header = lines.next().unwrap();
        let rest = lines.collect::<Vec<_>>().join("\n") + "\n";
        let parsed = read_result(header, &mut rest.as_bytes()).unwrap();
        assert_eq!(parsed, result);
    }

    #[test]
    fn header_parsing_tolerates_unknown_and_missing_keys() {
        // A proto-1 header (no delta=, fallbacks= or fp=) still parses,
        // with the unreported fields defaulting to zero …
        let legacy = "RESULT 4 4 2 hits=1 misses=2 invalidations=0 parallel=0 elementwise=0 \
                      fused=0 nodes=7";
        let parsed = ResponseHeader::parse(legacy).unwrap();
        assert_eq!((parsed.rows, parsed.cols, parsed.nnz), (4, 4, 2));
        assert_eq!(parsed.stats.cache_misses, 2);
        assert_eq!(parsed.stats.delta_patches, 0);
        assert_eq!(parsed.fingerprint, 0);
        // … and keys from a *future* protocol revision are skipped.
        let future = "RESULT 1 1 0 hits=1 shards=9 fp=00000000000000ff";
        let parsed = ResponseHeader::parse(future).unwrap();
        assert_eq!(parsed.stats.cache_hits, 1);
        assert_eq!(parsed.fingerprint, 0xff);
        // Known keys with garbage values are still rejected.
        assert!(ResponseHeader::parse("RESULT 1 1 0 hits=lots").is_err());
        assert!(ResponseHeader::parse("RESULT 1 1 0 fp=zz").is_err());
    }

    #[test]
    fn err_replies_carry_the_stable_code() {
        let mut wire = Vec::new();
        write_err(
            &mut wire,
            &ServerError::UnknownInstance { name: "g".into() },
        )
        .unwrap();
        assert_eq!(
            String::from_utf8(wire).unwrap(),
            "ERR ENOINST unknown instance `g`\n"
        );
    }

    #[test]
    fn single_line_strips_control_characters() {
        assert_eq!(single_line("a\nb\tc"), "a b c");
        assert_eq!(single_line("plain"), "plain");
    }
}
