//! The wire protocol: line-delimited text over TCP.
//!
//! Every request is one line of whitespace-separated tokens (`LOAD` is
//! followed by its entry lines); every response is either a single line or
//! a `RESULT … END` block.  The protocol is deliberately hand-rollable
//! from `netcat`:
//!
//! ```text
//! →  INSTANCE g adaptive            ←  OK instance g adaptive
//! →  DIM g n 4                      ←  OK dim n 4
//! →  LOAD g G 4 4 3                 ←  (reads 3 entry lines) OK load G nnz=3
//! →  0 1 1
//! →  1 2 1
//! →  2 0 1
//! →  PREPARE g (G * G)             ←  OK prepared 0 plan=built statement=new nodes=2
//! →  EXEC g 0                       ←  RESULT 4 4 2 hits=0 misses=2 … nodes=2
//! ←  0 2 1                              (nnz entry lines)
//! ←  END
//! →  UPDATE g G 3 3 2.5             ←  OK update G entries=1 invalidated=2
//! ```
//!
//! Numbers use Rust's shortest-round-trip `f64` formatting, so values
//! survive a wire round trip **bit-identically** — the property the
//! integration suite pins against `matlang_core::evaluate`.  Error replies
//! are a single `ERR <message>` line; the error `Display` impls across the
//! workspace are guaranteed newline-free (pinned by
//! `tests/single_line_errors.rs`), so messages ship verbatim.

use matlang_engine::ExecStats;
use std::io::{BufRead, Write};

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// `INSTANCE <name> dense|adaptive` — create a named instance.
    Instance { name: String, adaptive: bool },
    /// `DIM <instance> <sym> <n>` — assign a size symbol.
    Dim {
        instance: String,
        sym: String,
        value: usize,
    },
    /// `LOAD <instance> <var> <rows> <cols> <nnz>` — followed by `nnz`
    /// entry lines `i j value`.
    Load {
        instance: String,
        var: String,
        rows: usize,
        cols: usize,
        nnz: usize,
    },
    /// `GEN <instance> <var> <sym> er <avg_degree> <seed>` or
    /// `GEN <instance> <var> <sym> pl <avg_degree> <alpha> <seed>` —
    /// generate a random sparse graph over the dimension named by `sym`.
    Gen {
        instance: String,
        var: String,
        sym: String,
        kind: GenKind,
    },
    /// `PREPARE <instance> <query text…>` — parse, typecheck, plan.
    Prepare { instance: String, text: String },
    /// `EXEC <instance> <qid>` — run one prepared query.
    Exec { instance: String, qid: usize },
    /// `EXECBATCH <instance> <qid>…` — run several prepared queries.
    ExecBatch { instance: String, qids: Vec<usize> },
    /// `QUERY <instance> <query text…>` — one-shot parse + plan + eval
    /// (no prepared statement, no persistent cache); the baseline the
    /// `server_throughput` bench compares `EXEC` against.
    Query { instance: String, text: String },
    /// `UPDATE <instance> <var> (<i> <j> <value>)+` — in-place point
    /// updates plus dependency-scoped cache invalidation.
    Update {
        instance: String,
        var: String,
        entries: Vec<(usize, usize, f64)>,
    },
    /// `LIST` — instance names.
    List,
    /// `DROP <instance>` — remove an instance.
    Drop { instance: String },
    /// `PING` — liveness check.
    Ping,
    /// `QUIT` — close this connection.
    Quit,
}

/// Random-graph generator selection for [`Request::Gen`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GenKind {
    /// Erdős–Rényi with the given average degree.
    ErdosRenyi { avg_degree: f64, seed: u64 },
    /// Power-law with the given average degree and exponent.
    PowerLaw {
        avg_degree: f64,
        alpha: f64,
        seed: u64,
    },
}

fn parse_num<T: std::str::FromStr>(tok: Option<&str>, what: &str) -> Result<T, String> {
    tok.ok_or_else(|| format!("missing {what}"))?
        .parse::<T>()
        .map_err(|_| format!("malformed {what}"))
}

impl Request {
    /// Parses one request line (without its trailing newline).
    pub fn parse(line: &str) -> Result<Request, String> {
        let mut tokens = line.split_whitespace();
        let command = tokens.next().ok_or_else(|| "empty command".to_string())?;
        match command.to_ascii_uppercase().as_str() {
            "INSTANCE" => {
                let name = parse_num::<String>(tokens.next(), "instance name")?;
                let backend = tokens.next().unwrap_or("adaptive");
                let adaptive = match backend {
                    "dense" => false,
                    "adaptive" => true,
                    other => return Err(format!("unknown backend `{other}` (dense|adaptive)")),
                };
                Ok(Request::Instance { name, adaptive })
            }
            "DIM" => Ok(Request::Dim {
                instance: parse_num(tokens.next(), "instance name")?,
                sym: parse_num(tokens.next(), "size symbol")?,
                value: parse_num(tokens.next(), "dimension value")?,
            }),
            "LOAD" => Ok(Request::Load {
                instance: parse_num(tokens.next(), "instance name")?,
                var: parse_num(tokens.next(), "variable name")?,
                rows: parse_num(tokens.next(), "row count")?,
                cols: parse_num(tokens.next(), "column count")?,
                nnz: parse_num(tokens.next(), "entry count")?,
            }),
            "GEN" => {
                let instance = parse_num(tokens.next(), "instance name")?;
                let var = parse_num(tokens.next(), "variable name")?;
                let sym = parse_num(tokens.next(), "size symbol")?;
                let kind = match tokens.next() {
                    Some("er") => GenKind::ErdosRenyi {
                        avg_degree: parse_num(tokens.next(), "average degree")?,
                        seed: parse_num(tokens.next(), "seed")?,
                    },
                    Some("pl") => GenKind::PowerLaw {
                        avg_degree: parse_num(tokens.next(), "average degree")?,
                        alpha: parse_num(tokens.next(), "exponent")?,
                        seed: parse_num(tokens.next(), "seed")?,
                    },
                    other => {
                        return Err(format!(
                            "unknown generator `{}` (er|pl)",
                            other.unwrap_or("<none>")
                        ))
                    }
                };
                Ok(Request::Gen {
                    instance,
                    var,
                    sym,
                    kind,
                })
            }
            "PREPARE" | "QUERY" => {
                let instance: String = parse_num(tokens.next(), "instance name")?;
                let text = tokens.collect::<Vec<_>>().join(" ");
                if text.is_empty() {
                    return Err("missing query text".to_string());
                }
                if command.eq_ignore_ascii_case("PREPARE") {
                    Ok(Request::Prepare { instance, text })
                } else {
                    Ok(Request::Query { instance, text })
                }
            }
            "EXEC" => Ok(Request::Exec {
                instance: parse_num(tokens.next(), "instance name")?,
                qid: parse_num(tokens.next(), "query id")?,
            }),
            "EXECBATCH" => {
                let instance: String = parse_num(tokens.next(), "instance name")?;
                let qids: Vec<usize> = tokens
                    .map(|t| {
                        t.parse::<usize>()
                            .map_err(|_| "malformed query id".to_string())
                    })
                    .collect::<Result<_, _>>()?;
                if qids.is_empty() {
                    return Err("EXECBATCH needs at least one query id".to_string());
                }
                Ok(Request::ExecBatch { instance, qids })
            }
            "UPDATE" => {
                let instance: String = parse_num(tokens.next(), "instance name")?;
                let var: String = parse_num(tokens.next(), "variable name")?;
                let rest: Vec<&str> = tokens.collect();
                if rest.is_empty() || rest.len() % 3 != 0 {
                    return Err("UPDATE needs (row col value) triples".to_string());
                }
                let entries = rest
                    .chunks(3)
                    .map(|t| -> Result<_, String> {
                        Ok((
                            parse_num::<usize>(Some(t[0]), "row")?,
                            parse_num::<usize>(Some(t[1]), "column")?,
                            parse_num::<f64>(Some(t[2]), "value")?,
                        ))
                    })
                    .collect::<Result<_, _>>()?;
                Ok(Request::Update {
                    instance,
                    var,
                    entries,
                })
            }
            "LIST" => Ok(Request::List),
            "DROP" => Ok(Request::Drop {
                instance: parse_num(tokens.next(), "instance name")?,
            }),
            "PING" => Ok(Request::Ping),
            "QUIT" => Ok(Request::Quit),
            other => Err(format!("unknown command `{other}`")),
        }
    }
}

/// The result of executing one query, as shipped over the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct WireResult {
    /// Result row count.
    pub rows: usize,
    /// Result column count.
    pub cols: usize,
    /// The non-zero entries `(row, col, value)` in row-major order.
    pub entries: Vec<(usize, usize, f64)>,
    /// Executor counters for this request.
    pub stats: ExecStats,
    /// DAG node count of the plan the query ran against — the denominator
    /// for cache-hit-ratio assertions.
    pub plan_nodes: usize,
}

/// Collapses a message to a single protocol-safe line.  The workspace
/// error types are already newline-free (pinned by the
/// `single_line_errors` test); this is defense in depth for foreign text
/// such as I/O error strings.
pub fn single_line(message: &str) -> String {
    message
        .chars()
        .map(|c| if c.is_control() { ' ' } else { c })
        .collect()
}

/// Writes an `ERR` reply.
pub fn write_err(out: &mut impl Write, message: &str) -> std::io::Result<()> {
    writeln!(out, "ERR {}", single_line(message))
}

/// Writes a `RESULT … END` block.
pub fn write_result(out: &mut impl Write, result: &WireResult) -> std::io::Result<()> {
    writeln!(
        out,
        "RESULT {} {} {} hits={} misses={} invalidations={} parallel={} elementwise={} \
         fused={} nodes={}",
        result.rows,
        result.cols,
        result.entries.len(),
        result.stats.cache_hits,
        result.stats.cache_misses,
        result.stats.invalidations,
        result.stats.parallel_products,
        result.stats.parallel_elementwise,
        result.stats.fused_products,
        result.plan_nodes,
    )?;
    for (i, j, v) in &result.entries {
        writeln!(out, "{i} {j} {v}")?;
    }
    writeln!(out, "END")
}

/// Reads a `RESULT … END` block (the client side of [`write_result`]).
/// `header` is the already-consumed `RESULT` line.
pub fn read_result(header: &str, input: &mut impl BufRead) -> Result<WireResult, String> {
    let mut tokens = header.split_whitespace();
    if tokens.next() != Some("RESULT") {
        return Err(format!("expected RESULT, got `{header}`"));
    }
    let rows: usize = parse_num(tokens.next(), "row count")?;
    let cols: usize = parse_num(tokens.next(), "column count")?;
    let nnz: usize = parse_num(tokens.next(), "entry count")?;
    let mut stats = ExecStats::default();
    let mut plan_nodes = 0usize;
    for token in tokens {
        let (key, value) = token
            .split_once('=')
            .ok_or_else(|| format!("malformed stat token `{token}`"))?;
        let value: u64 = value
            .parse()
            .map_err(|_| format!("malformed stat `{token}`"))?;
        match key {
            "hits" => stats.cache_hits = value,
            "misses" => stats.cache_misses = value,
            "invalidations" => stats.invalidations = value,
            "parallel" => stats.parallel_products = value,
            "elementwise" => stats.parallel_elementwise = value,
            "fused" => stats.fused_products = value,
            "nodes" => plan_nodes = value as usize,
            other => return Err(format!("unknown stat `{other}`")),
        }
    }
    // `nnz` comes off the wire: clamp the pre-allocation (the vector
    // still grows to the real entry count).
    let mut entries = Vec::with_capacity(nnz.min(1 << 16));
    let mut line = String::new();
    for _ in 0..nnz {
        line.clear();
        if input.read_line(&mut line).map_err(|e| e.to_string())? == 0 {
            return Err("connection closed mid-result".to_string());
        }
        let mut t = line.split_whitespace();
        entries.push((
            parse_num::<usize>(t.next(), "entry row")?,
            parse_num::<usize>(t.next(), "entry column")?,
            parse_num::<f64>(t.next(), "entry value")?,
        ));
    }
    line.clear();
    input.read_line(&mut line).map_err(|e| e.to_string())?;
    if line.trim() != "END" {
        return Err(format!("expected END, got `{}`", line.trim()));
    }
    Ok(WireResult {
        rows,
        cols,
        entries,
        stats,
        plan_nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_core_commands() {
        assert_eq!(
            Request::parse("INSTANCE g dense").unwrap(),
            Request::Instance {
                name: "g".into(),
                adaptive: false
            }
        );
        assert_eq!(
            Request::parse("instance g").unwrap(),
            Request::Instance {
                name: "g".into(),
                adaptive: true
            }
        );
        assert_eq!(
            Request::parse("DIM g n 10").unwrap(),
            Request::Dim {
                instance: "g".into(),
                sym: "n".into(),
                value: 10
            }
        );
        assert_eq!(
            Request::parse("PREPARE g (G * G)").unwrap(),
            Request::Prepare {
                instance: "g".into(),
                text: "(G * G)".into()
            }
        );
        assert_eq!(
            Request::parse("EXECBATCH g 0 1 2").unwrap(),
            Request::ExecBatch {
                instance: "g".into(),
                qids: vec![0, 1, 2]
            }
        );
        assert_eq!(
            Request::parse("UPDATE g G 0 1 2.5 3 4 0").unwrap(),
            Request::Update {
                instance: "g".into(),
                var: "G".into(),
                entries: vec![(0, 1, 2.5), (3, 4, 0.0)],
            }
        );
        assert_eq!(Request::parse("PING").unwrap(), Request::Ping);
    }

    #[test]
    fn rejects_malformed_commands() {
        assert!(Request::parse("").is_err());
        assert!(Request::parse("FROB g").is_err());
        assert!(Request::parse("INSTANCE g columnar").is_err());
        assert!(Request::parse("EXEC g notanumber").is_err());
        assert!(Request::parse("EXECBATCH g").is_err());
        assert!(Request::parse("UPDATE g G 0 1").is_err());
        assert!(Request::parse("PREPARE g").is_err());
        assert!(Request::parse("GEN g G n frob 1 2").is_err());
    }

    #[test]
    fn result_blocks_round_trip() {
        let result = WireResult {
            rows: 2,
            cols: 3,
            entries: vec![(0, 1, 1.5), (1, 2, -0.25), (1, 0, 3e300)],
            stats: ExecStats {
                cache_hits: 7,
                cache_misses: 2,
                invalidations: 1,
                parallel_products: 1,
                parallel_elementwise: 0,
                fused_products: 3,
            },
            plan_nodes: 9,
        };
        let mut wire = Vec::new();
        write_result(&mut wire, &result).unwrap();
        let text = String::from_utf8(wire).unwrap();
        let mut lines = text.lines();
        let header = lines.next().unwrap();
        let rest = lines.collect::<Vec<_>>().join("\n") + "\n";
        let parsed = read_result(header, &mut rest.as_bytes()).unwrap();
        assert_eq!(parsed, result);
    }

    #[test]
    fn single_line_strips_control_characters() {
        assert_eq!(single_line("a\nb\tc"), "a b c");
        assert_eq!(single_line("plain"), "plain");
    }
}
