//! Per-connection command loop.
//!
//! One worker thread runs one connection's entire session: read a request
//! line, execute it against the shared [`Store`], write the reply, flush.
//! Protocol errors (`ERR <CODE> …`) never tear the connection down — only
//! `QUIT`, EOF or an I/O failure do.

use crate::error::ServerError;
use crate::protocol::{
    write_err, write_lines_block, write_result, Request, CAPABILITIES, PROTOCOL_VERSION,
};
use crate::store::{DeltaDisposition, Store};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-connection accounting, shared between the serving worker and the
/// session registry (so `HEALTH`-era introspection and tests can read a
/// live session's figures without touching its socket).  All fields are
/// relaxed atomics: single writer, any reader.
#[derive(Debug, Default)]
pub struct SessionStats {
    /// Requests served, including ones answered with `ERR`.
    pub requests: AtomicU64,
    /// Bytes written back to the client.
    pub bytes_out: AtomicU64,
    /// Cumulative wall time spent in statement execution
    /// (`EXEC`/`EXECBATCH`/`QUERY`), microseconds.
    pub exec_time_us: AtomicU64,
}

/// A `Write` passthrough to the session socket that adds every written
/// byte to the session's [`SessionStats`].  Sits *inside* the
/// `BufWriter`, so it pays one increment per flushed buffer, not per
/// `write!`.
struct CountingStream {
    inner: TcpStream,
    stats: Arc<SessionStats>,
}

impl Write for CountingStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let written = self.inner.write(buf)?;
        self.stats
            .bytes_out
            .fetch_add(written as u64, Ordering::Relaxed);
        Ok(written)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Whether a request kind gets a per-query trace: the verbs that parse,
/// plan or execute (the spans the engine emits hang off this root).
fn traced(request: &Request) -> bool {
    matches!(
        request,
        Request::Prepare { .. }
            | Request::Exec { .. }
            | Request::ExecBatch { .. }
            | Request::Query { .. }
            | Request::Update { .. }
            | Request::Profile { .. }
    )
}

/// Whether a request executes statements — the kinds whose dispatch time
/// accrues into [`SessionStats::exec_time_us`].
fn executes(request: &Request) -> bool {
    matches!(
        request,
        Request::Exec { .. } | Request::ExecBatch { .. } | Request::Query { .. }
    )
}

/// Serves one connection until `QUIT`, EOF or an I/O error.
pub fn serve_connection(
    store: &Store,
    stream: TcpStream,
    stats: Arc<SessionStats>,
) -> std::io::Result<()> {
    matlang_obs::counter!("connections_total").inc();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(CountingStream {
        inner: stream,
        stats: Arc::clone(&stats),
    });
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client hung up
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        matlang_obs::counter!("requests_total").inc();
        stats.requests.fetch_add(1, Ordering::Relaxed);
        match Request::parse(trimmed) {
            Err(message) => write_err(&mut writer, &ServerError::protocol(message))?,
            Ok(Request::Quit) => {
                writeln!(writer, "OK bye")?;
                writer.flush()?;
                return Ok(());
            }
            Ok(request) => {
                // One trace per query-ish request, labeled with the wire
                // line; the guard stays alive across the dispatch so the
                // parse/plan/execute spans attach to it, and its id is
                // echoed on RESULT headers as `trace=`.
                let _trace = (traced(&request) && matlang_obs::enabled())
                    .then(|| matlang_obs::trace::begin(matlang_obs::trace::next_id(), trimmed));
                let timer = executes(&request).then(std::time::Instant::now);
                dispatch(store, request, &mut reader, &mut writer)?;
                if let Some(t) = timer {
                    stats
                        .exec_time_us
                        .fetch_add(t.elapsed().as_micros() as u64, Ordering::Relaxed);
                }
            }
        }
        writer.flush()?;
    }
}

fn dispatch(
    store: &Store,
    request: Request,
    reader: &mut BufReader<TcpStream>,
    writer: &mut impl Write,
) -> std::io::Result<()> {
    match request {
        Request::Hello => writeln!(
            writer,
            "OK matlangd proto={PROTOCOL_VERSION} caps={}",
            CAPABILITIES.join(",")
        ),
        Request::Instance {
            name,
            adaptive,
            semiring,
        } => match store.create_instance_with(&name, adaptive, semiring) {
            Ok(()) => writeln!(
                writer,
                "OK instance {name} {} {}",
                if adaptive { "adaptive" } else { "dense" },
                semiring.name()
            ),
            Err(e) => write_err(writer, &e),
        },
        Request::Dim {
            instance,
            sym,
            value,
        } => match store.set_dim(&instance, &sym, value) {
            Ok(()) => writeln!(writer, "OK dim {sym} {value}"),
            Err(e) => write_err(writer, &e),
        },
        Request::Load {
            instance,
            var,
            rows,
            cols,
            nnz,
        } => {
            // The entry lines belong to this request even if it fails
            // late: consume all of them first so the protocol stays in
            // sync, then apply.
            // `nnz` is an untrusted wire value: clamp the pre-allocation
            // so a hostile header cannot force a huge up-front allocation
            // (the vector still grows to the real entry count).
            let mut entries = Vec::with_capacity(nnz.min(1 << 16));
            let mut parse_error = None;
            let mut line = String::new();
            for _ in 0..nnz {
                line.clear();
                if reader.read_line(&mut line)? == 0 {
                    return write_err(writer, &ServerError::protocol("connection closed mid-LOAD"));
                }
                let mut tokens = line.split_whitespace();
                let entry = (|| {
                    Some((
                        tokens.next()?.parse::<usize>().ok()?,
                        tokens.next()?.parse::<usize>().ok()?,
                        tokens.next()?.parse::<f64>().ok()?,
                    ))
                })();
                match entry {
                    Some(e) => entries.push(e),
                    None => {
                        parse_error.get_or_insert_with(|| {
                            ServerError::protocol(format!("malformed entry `{}`", line.trim()))
                        });
                    }
                }
            }
            if let Some(error) = parse_error {
                return write_err(writer, &error);
            }
            match store.load_matrix(&instance, &var, rows, cols, entries) {
                Ok(stored) => writeln!(writer, "OK load {var} nnz={stored}"),
                Err(e) => write_err(writer, &e),
            }
        }
        Request::Gen {
            instance,
            var,
            sym,
            kind,
        } => match store.generate_matrix(&instance, &var, &sym, kind) {
            Ok(nnz) => writeln!(writer, "OK gen {var} nnz={nnz}"),
            Err(e) => write_err(writer, &e),
        },
        Request::Prepare { instance, text } => match store.prepare(&instance, &text) {
            Ok(outcome) => writeln!(
                writer,
                "OK prepared {} plan={} statement={} nodes={} fp={:016x}",
                outcome.qid,
                if outcome.reused_plan {
                    "cached"
                } else {
                    "built"
                },
                if outcome.reused_statement {
                    "reused"
                } else {
                    "new"
                },
                outcome.plan_nodes,
                outcome.plan_fingerprint,
            ),
            Err(e) => write_err(writer, &e),
        },
        Request::Exec { instance, qid } => match store.exec(&instance, &[qid]) {
            Ok(results) => write_result(writer, &results[0]),
            Err(e) => write_err(writer, &e),
        },
        Request::ExecBatch { instance, qids } => match store.exec(&instance, &qids) {
            Ok(results) => {
                writeln!(writer, "BATCH {}", results.len())?;
                for result in &results {
                    write_result(writer, result)?;
                }
                Ok(())
            }
            Err(e) => write_err(writer, &e),
        },
        Request::Query { instance, text } => match store.query(&instance, &text) {
            Ok(result) => write_result(writer, &result),
            Err(e) => write_err(writer, &e),
        },
        Request::Update {
            instance,
            var,
            entries,
        } => match store.update(&instance, &var, &entries) {
            Ok(outcome) => {
                // Proto-2 appends how the cache was maintained; the
                // proto-1 prefix is unchanged.
                write!(
                    writer,
                    "OK update {var} entries={} invalidated={}",
                    outcome.applied, outcome.invalidated
                )?;
                match outcome.delta {
                    DeltaDisposition::Applied { patched } => {
                        writeln!(writer, " delta=applied patched={patched}")
                    }
                    DeltaDisposition::Fallback { reason } => {
                        writeln!(writer, " delta=fallback reason={}", reason.code())
                    }
                }
            }
            Err(e) => write_err(writer, &e),
        },
        Request::List => {
            // Proto 2 describes each instance as colon-separated fields;
            // clients parse from the right so names survive unchanged.
            let fields: Vec<String> = store
                .list_detailed()
                .iter()
                .map(|info| {
                    format!(
                        "{}:{}:{}:{}:{}",
                        info.name,
                        info.backend,
                        info.semiring,
                        info.delta_patches,
                        info.delta_fallbacks
                    )
                })
                .collect();
            writeln!(writer, "OK instances {}", fields.join(" "))
        }
        Request::Metrics { window } => {
            // Every METRICS request also records a registry snapshot into
            // the window ring, so windowed baselines accrue from scrape
            // traffic alone — no background thread.
            let lines = match window {
                None => {
                    matlang_obs::metrics::record_snapshot();
                    matlang_obs::registry().render_lines()
                }
                Some(secs) => matlang_obs::metrics::render_window_lines(secs),
            };
            write_lines_block(writer, "METRICS", &lines)
        }
        Request::Stats { instance } => match store.stats(&instance) {
            Ok(lines) => write_lines_block(writer, "STATS", &lines),
            Err(e) => write_err(writer, &e),
        },
        Request::Slowlog { n } => {
            let entries = matlang_obs::trace::slow_queries(n.unwrap_or(16));
            let mut lines = Vec::new();
            for slow in &entries {
                lines.push(format!(
                    "ENTRY trace={:016x} total_us={} detail={} {}",
                    slow.trace_id,
                    slow.total_us,
                    slow.detail.len(),
                    slow.label
                ));
                lines.extend(slow.detail.iter().cloned());
            }
            write_lines_block(writer, "SLOWLOG", &lines)
        }
        Request::Explain { instance, text } => match store.explain(&instance, &text) {
            Ok(lines) => write_lines_block(writer, "EXPLAIN", &lines),
            Err(e) => write_err(writer, &e),
        },
        Request::Profile { instance, text } => match store.profile(&instance, &text) {
            Ok(lines) => write_lines_block(writer, "PROFILE", &lines),
            Err(e) => write_err(writer, &e),
        },
        Request::Drop { instance } => match store.drop_instance(&instance) {
            Ok(()) => writeln!(writer, "OK dropped {instance}"),
            Err(e) => write_err(writer, &e),
        },
        Request::Health => writeln!(writer, "OK health {}", store.health().render()),
        Request::Top { n } => write_lines_block(writer, "TOP", &store.top(n)),
        Request::TraceExport { n } => {
            let traces = matlang_obs::trace::recent(n.unwrap_or(32));
            let lines: Vec<String> = matlang_obs::export::render_chrome_trace(&traces)
                .lines()
                .map(String::from)
                .collect();
            write_lines_block(writer, "TRACE", &lines)
        }
        Request::Save { instance, path } => {
            match store.save(&instance, path.as_deref().map(std::path::Path::new)) {
                Ok((bytes, path)) => writeln!(
                    writer,
                    "OK saved {instance} bytes={bytes} path={}",
                    path.display()
                ),
                Err(e) => write_err(writer, &e),
            }
        }
        Request::Restore { instance, path } => {
            match store.restore(&instance, std::path::Path::new(&path)) {
                Ok((dims, vars)) => {
                    writeln!(writer, "OK restored {instance} dims={dims} vars={vars}")
                }
                Err(e) => write_err(writer, &e),
            }
        }
        Request::Persist { instance, on } => match store.set_persist(&instance, on) {
            Ok(on) => writeln!(
                writer,
                "OK persist {instance} {}",
                if on { "on" } else { "off" }
            ),
            Err(e) => write_err(writer, &e),
        },
        Request::Walstat { instance } => match store.walstat(&instance) {
            Ok(stat) => writeln!(writer, "OK walstat {instance} {}", stat.render()),
            Err(e) => write_err(writer, &e),
        },
        Request::Ping => writeln!(writer, "OK pong"),
        Request::Quit => unreachable!("handled by the session loop"),
    }
}
