//! Typed server errors with stable wire codes.
//!
//! Every failing request is answered with one `ERR <CODE> <message>` line.
//! The code is a **stable contract**: clients branch on it (see
//! [`crate::client::ErrorCode`]), while the human-readable message may be
//! reworded freely.  Like every error type in the workspace, the `Display`
//! form is guaranteed newline-free (pinned by `tests/single_line_errors.rs`)
//! so messages ship verbatim as one protocol line.

use std::fmt;

/// A request-level failure, categorised for the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServerError {
    /// `INSTANCE` with a name that is already taken (`EEXISTS`).
    InstanceExists {
        /// The requested instance name.
        name: String,
    },
    /// A request named an instance the store does not hold (`ENOINST`).
    UnknownInstance {
        /// The requested instance name.
        name: String,
    },
    /// `UPDATE` named a matrix variable the instance does not bind
    /// (`ENOVAR`).
    UnknownVariable {
        /// The requested variable name.
        var: String,
    },
    /// `EXEC` with a query id that was never returned by `PREPARE`
    /// (`ENOQUERY`).
    UnknownQueryId {
        /// The out-of-range query id.
        qid: usize,
    },
    /// `EXEC` before any `PREPARE` on the instance (`ENOPREP`).
    NoPreparedQueries,
    /// The query text failed to parse (`EPARSE`).
    Parse {
        /// The parser's message.
        message: String,
    },
    /// The query text failed to type-check (`ETYPE`).
    Type {
        /// The type checker's message.
        message: String,
    },
    /// Evaluation failed at runtime (`EEVAL`).
    Eval {
        /// The evaluator's message.
        message: String,
    },
    /// A storage-layer operation failed — bad shapes, out-of-bounds
    /// entries, unassigned size symbols (`ESTORE`).
    Storage {
        /// The storage layer's message.
        message: String,
    },
    /// The request line itself was malformed or arrived out of protocol
    /// (`EPROTO`).
    Protocol {
        /// What was wrong with the request.
        message: String,
    },
}

impl ServerError {
    /// The stable, whitespace-free wire code for this error category.
    pub fn code(&self) -> &'static str {
        match self {
            ServerError::InstanceExists { .. } => "EEXISTS",
            ServerError::UnknownInstance { .. } => "ENOINST",
            ServerError::UnknownVariable { .. } => "ENOVAR",
            ServerError::UnknownQueryId { .. } => "ENOQUERY",
            ServerError::NoPreparedQueries => "ENOPREP",
            ServerError::Parse { .. } => "EPARSE",
            ServerError::Type { .. } => "ETYPE",
            ServerError::Eval { .. } => "EEVAL",
            ServerError::Storage { .. } => "ESTORE",
            ServerError::Protocol { .. } => "EPROTO",
        }
    }

    /// Shorthand for a protocol-level error.
    pub fn protocol(message: impl Into<String>) -> ServerError {
        ServerError::Protocol {
            message: message.into(),
        }
    }

    /// Shorthand for a storage-level error.
    pub fn storage(message: impl Into<String>) -> ServerError {
        ServerError::Storage {
            message: message.into(),
        }
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::InstanceExists { name } => {
                write!(f, "instance `{name}` already exists")
            }
            ServerError::UnknownInstance { name } => write!(f, "unknown instance `{name}`"),
            ServerError::UnknownVariable { var } => write!(f, "unknown variable `{var}`"),
            ServerError::UnknownQueryId { qid } => write!(f, "unknown query id {qid}"),
            ServerError::NoPreparedQueries => {
                write!(f, "no prepared queries on this instance")
            }
            ServerError::Parse { message } => write!(f, "parse error: {message}"),
            ServerError::Type { message } => write!(f, "type error: {message}"),
            ServerError::Eval { message } => write!(f, "eval error: {message}"),
            ServerError::Storage { message } => write!(f, "{message}"),
            ServerError::Protocol { message } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for ServerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_single_tokens() {
        let all = [
            ServerError::InstanceExists { name: "g".into() },
            ServerError::UnknownInstance { name: "g".into() },
            ServerError::UnknownVariable { var: "G".into() },
            ServerError::UnknownQueryId { qid: 9 },
            ServerError::NoPreparedQueries,
            ServerError::Parse {
                message: "x".into(),
            },
            ServerError::Type {
                message: "x".into(),
            },
            ServerError::Eval {
                message: "x".into(),
            },
            ServerError::storage("x"),
            ServerError::protocol("x"),
        ];
        let codes: Vec<&str> = all.iter().map(ServerError::code).collect();
        assert_eq!(
            codes,
            vec![
                "EEXISTS", "ENOINST", "ENOVAR", "ENOQUERY", "ENOPREP", "EPARSE", "ETYPE", "EEVAL",
                "ESTORE", "EPROTO",
            ]
        );
        for (e, code) in all.iter().zip(&codes) {
            assert!(!code.contains(char::is_whitespace));
            assert!(!e.to_string().contains('\n'), "single-line Display");
        }
    }
}
