//! The named instance store and the prepared-query machinery.
//!
//! A [`Store`] owns:
//!
//! * a `RwLock`-guarded map from instance name to [`ServerInstance`] — the
//!   read lock is enough to *find* an instance, per-instance `Mutex`es
//!   serialize work on one instance while different instances proceed in
//!   parallel on different worker threads;
//! * a process-wide **plan cache** keyed by `(queries fingerprint, schema
//!   fingerprint)` ([`matlang_engine::expr_fingerprint`] /
//!   [`InstanceStats::schema_fingerprint`]): two instances with the same
//!   shape preparing the same queries share one hash-consed [`Plan`].
//!   The cache is bounded at [`PLAN_CACHE_CAPACITY`] with
//!   least-recently-used eviction, so a long-lived server preparing ever
//!   new query batches cannot grow it without bound.  With the engine's
//!   cost-based rewrite layer, the cached plan is the *rewritten* DAG —
//!   its chain association and fused kernels were chosen from the
//!   statistics of the instance that first planned it.  Any such variant
//!   is semantically valid for every same-schema instance (the rules are
//!   semiring identities over the shapes the schema fixes), merely tuned
//!   for the first planner's nnz profile; [`Plan::structure_fingerprint`]
//!   is reported on every `PREPARE` (wire token `fp=`) so clients can
//!   tell which variant they got.
//!
//! Each instance carries its prepared statements plus **one shared
//! [`NodeCache`]** over a single plan DAG covering *all* its prepared
//! queries (they are planned as a batch, so common subterms are one node):
//! an `EXEC` seeds an [`Executor`] with the cache, runs one root, and puts
//! the cache back, which makes a repeated `EXEC` of an unchanged query a
//! single cache hit.  An `UPDATE` mutates matrix entries in place
//! ([`MatrixStorage::set_entry`]) and then drops **exactly** the cached
//! nodes depending on the touched variable
//! ([`Plan::invalidate_dependents_in`]) — standing queries over other
//! variables keep their warm results.

use crate::protocol::{GenKind, WireResult};
use matlang_core::{typecheck, Dim, Expr, FunctionRegistry, Instance, MatrixType, Schema};
use matlang_engine::{expr_fingerprint, Engine, Executor, InstanceStats, NodeCache, Plan};
use matlang_matrix::{
    sparse_erdos_renyi, sparse_power_law, Matrix, MatrixRepr, MatrixStorage, SparseMatrix,
};
use matlang_parser::parse;
use matlang_semiring::{Real, Semiring};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, RwLock};

/// One prepared statement: the query text, its parsed form and its
/// fingerprint (the dedup key — re-preparing the same text returns the
/// existing id without disturbing the warm cache).
#[derive(Clone, Debug)]
pub struct PreparedQuery {
    /// The query text as received.
    pub text: String,
    /// The parsed, type-checked expression.
    pub expr: Expr,
    /// [`expr_fingerprint`] of `expr`.
    pub fingerprint: u64,
}

/// Per-backend instance state: the MATLANG instance plus the prepared-query
/// plan and its persistent memo cache.
pub struct BackendState<M: MatrixStorage<Elem = Real>> {
    /// The MATLANG instance (dims + matrices).
    pub instance: Instance<Real, M>,
    /// Prepared statements, indexed by query id.
    pub prepared: Vec<PreparedQuery>,
    /// One plan covering every prepared statement (root *i* ↔ query id
    /// *i*), shared through the store-wide plan cache.
    pub plan: Option<Arc<Plan>>,
    /// The persistent memo cache over `plan`'s nodes.
    pub cache: NodeCache<M>,
}

impl<M: MatrixStorage<Elem = Real>> Default for BackendState<M> {
    fn default() -> Self {
        BackendState {
            instance: Instance::new(),
            prepared: Vec::new(),
            plan: None,
            cache: Vec::new(),
        }
    }
}

/// A named instance: the same state machine over either the dense or the
/// adaptive sparse/dense storage backend.
pub enum ServerInstance {
    /// Dense row-major storage.
    Dense(BackendState<Matrix<Real>>),
    /// Adaptive (density-thresholded dense/CSR) storage.
    Adaptive(BackendState<MatrixRepr<Real>>),
}

impl ServerInstance {
    /// The backend name as used by the protocol.
    pub fn backend_name(&self) -> &'static str {
        match self {
            ServerInstance::Dense(_) => "dense",
            ServerInstance::Adaptive(_) => "adaptive",
        }
    }
}

/// Runs a closure against the backend-generic state of a
/// [`ServerInstance`].
macro_rules! with_state {
    ($instance:expr, |$state:ident| $body:expr) => {
        match $instance {
            ServerInstance::Dense($state) => $body,
            ServerInstance::Adaptive($state) => $body,
        }
    };
}

/// The outcome of a `PREPARE`.
#[derive(Clone, Copy, Debug)]
pub struct PrepareOutcome {
    /// The query id to pass to `EXEC`.
    pub qid: usize,
    /// Whether this exact statement was already prepared on the instance.
    pub reused_statement: bool,
    /// Whether the plan came from the store-wide plan cache.
    pub reused_plan: bool,
    /// DAG node count of the (batch) plan.
    pub plan_nodes: usize,
    /// [`Plan::structure_fingerprint`] of the plan the statement will
    /// execute.  The cost-based rewrite layer means the *rewritten* DAG —
    /// not the query text — is what runs, and its shape depends on the
    /// instance statistics at planning time; this fingerprint identifies
    /// the variant (echoed on the wire as `fp=` so clients can tell two
    /// plan variants of the same text apart).
    pub plan_fingerprint: u64,
}

/// How many `(queries, schema)` plan variants the process-wide plan cache
/// retains before evicting the least-recently-used one.  Plans are small
/// next to instance data, but an unbounded cache would grow with every
/// distinct prepared batch a long-lived server ever sees (ROADMAP item).
pub const PLAN_CACHE_CAPACITY: usize = 64;

/// A minimal LRU map for shared plans: a `HashMap` plus a monotonically
/// increasing use-stamp per entry; inserting at capacity evicts the entry
/// with the smallest stamp.  Eviction scans the map — `O(capacity)` on
/// insert — which is the right trade at this size (64 entries) versus
/// carrying a linked order structure.
struct LruPlanCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<(u64, u64), (Arc<Plan>, u64)>,
}

impl LruPlanCache {
    fn new(capacity: usize) -> Self {
        LruPlanCache {
            capacity: capacity.max(1),
            tick: 0,
            entries: HashMap::new(),
        }
    }

    /// Looks up a plan, refreshing its recency on a hit.
    fn get(&mut self, key: &(u64, u64)) -> Option<Arc<Plan>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|(plan, stamp)| {
            *stamp = tick;
            Arc::clone(plan)
        })
    }

    /// Inserts a plan, evicting the least-recently-used entry when the
    /// cache is full and the key is new.
    fn insert(&mut self, key: (u64, u64), plan: Arc<Plan>) {
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(&oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(key, _)| key)
            {
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(key, (plan, self.tick));
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// The shared server state; see the module docs.
pub struct Store {
    instances: RwLock<HashMap<String, Arc<Mutex<ServerInstance>>>>,
    plan_cache: Mutex<LruPlanCache>,
    registry: FunctionRegistry<Real>,
    engine: Engine,
}

impl Default for Store {
    fn default() -> Self {
        Store::new()
    }
}

impl Store {
    /// An empty store with the paper's standard pointwise functions
    /// (`div`, `gt0`, …) registered and the plan cache bounded at
    /// [`PLAN_CACHE_CAPACITY`].
    pub fn new() -> Store {
        Store::with_plan_cache_capacity(PLAN_CACHE_CAPACITY)
    }

    /// A store with an explicit plan-cache bound (used by the eviction
    /// tests; servers want [`Store::new`]).
    pub fn with_plan_cache_capacity(capacity: usize) -> Store {
        Store {
            instances: RwLock::new(HashMap::new()),
            plan_cache: Mutex::new(LruPlanCache::new(capacity)),
            registry: FunctionRegistry::standard_field(),
            engine: Engine::new(),
        }
    }

    /// Number of plans currently retained by the process-wide plan cache.
    pub fn plan_cache_len(&self) -> usize {
        self.plan_cache.lock().expect("plan cache poisoned").len()
    }

    /// Creates a named instance.  Fails if the name is taken.
    pub fn create_instance(&self, name: &str, adaptive: bool) -> Result<(), String> {
        let mut instances = self.instances.write().expect("store poisoned");
        if instances.contains_key(name) {
            return Err(format!("instance `{name}` already exists"));
        }
        let instance = if adaptive {
            ServerInstance::Adaptive(BackendState::default())
        } else {
            ServerInstance::Dense(BackendState::default())
        };
        instances.insert(name.to_string(), Arc::new(Mutex::new(instance)));
        Ok(())
    }

    /// Removes a named instance, with its prepared statements and cache.
    pub fn drop_instance(&self, name: &str) -> Result<(), String> {
        self.instances
            .write()
            .expect("store poisoned")
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| format!("unknown instance `{name}`"))
    }

    /// Instance names in sorted order.
    pub fn list_instances(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .instances
            .read()
            .expect("store poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    fn instance(&self, name: &str) -> Result<Arc<Mutex<ServerInstance>>, String> {
        self.instances
            .read()
            .expect("store poisoned")
            .get(name)
            .cloned()
            .ok_or_else(|| format!("unknown instance `{name}`"))
    }

    /// Assigns a size symbol on an instance.
    pub fn set_dim(&self, name: &str, sym: &str, value: usize) -> Result<(), String> {
        let instance = self.instance(name)?;
        let mut guard = instance.lock().expect("instance poisoned");
        with_state!(&mut *guard, |state| {
            state.instance.set_dim(sym, value);
            // Dimension symbols are not matrix variables, so they are
            // invisible to the plan's dependency index — a dim change
            // conservatively clears the whole memo cache (loop iteration
            // counts and canonical-vector sizes may all have changed).
            state.cache.iter_mut().for_each(|slot| *slot = None);
            Ok(())
        })
    }

    /// Assigns a matrix from explicit `(row, col, value)` entries.
    /// Returns the stored non-zero count.
    pub fn load_matrix(
        &self,
        name: &str,
        var: &str,
        rows: usize,
        cols: usize,
        entries: Vec<(usize, usize, f64)>,
    ) -> Result<usize, String> {
        let triplets: Vec<(usize, usize, Real)> = entries
            .into_iter()
            .map(|(i, j, v)| (i, j, Real(v)))
            .collect();
        let sparse =
            SparseMatrix::from_triplets(rows, cols, triplets).map_err(|e| e.to_string())?;
        self.assign_matrix(name, var, sparse)
    }

    /// Generates a random graph matrix over the dimension named `sym`.
    /// Returns the stored non-zero count.
    pub fn generate_matrix(
        &self,
        name: &str,
        var: &str,
        sym: &str,
        kind: GenKind,
    ) -> Result<usize, String> {
        let instance = self.instance(name)?;
        let n = {
            let guard = instance.lock().expect("instance poisoned");
            with_state!(&*guard, |state| state
                .instance
                .dim_value(&Dim::Sym(sym.to_string())))
        }
        .ok_or_else(|| format!("size symbol `{sym}` has no assigned dimension"))?;
        let sparse: SparseMatrix<Real> = match kind {
            GenKind::ErdosRenyi { avg_degree, seed } => sparse_erdos_renyi(n, avg_degree, seed),
            GenKind::PowerLaw {
                avg_degree,
                alpha,
                seed,
            } => sparse_power_law(n, avg_degree, alpha, seed),
        };
        self.assign_matrix(name, var, sparse)
    }

    /// Stores `matrix` under `var`, converting to the instance's backend.
    /// Any (re)assignment resets the prepared plan's memo cache — unlike a
    /// point `UPDATE`, a wholesale rebind invalidates everything that
    /// mentions the variable, and conservatively clearing is cheapest.
    fn assign_matrix(
        &self,
        name: &str,
        var: &str,
        sparse: SparseMatrix<Real>,
    ) -> Result<usize, String> {
        let nnz = sparse.nnz();
        let instance = self.instance(name)?;
        let mut guard = instance.lock().expect("instance poisoned");
        match &mut *guard {
            ServerInstance::Dense(state) => {
                state.instance.set_matrix(var, sparse.to_dense());
                state.cache.iter_mut().for_each(|slot| *slot = None);
            }
            ServerInstance::Adaptive(state) => {
                state
                    .instance
                    .set_matrix(var, MatrixRepr::from_sparse_auto(sparse));
                state.cache.iter_mut().for_each(|slot| *slot = None);
            }
        }
        Ok(nnz)
    }

    /// Parses, type-checks and plans a query against an instance,
    /// registering it as a prepared statement.  All of the instance's
    /// prepared statements are planned **as one batch** so they share a
    /// memo cache; the batch plan itself is shared through the store-wide
    /// `(queries, schema)`-keyed plan cache.
    pub fn prepare(&self, name: &str, text: &str) -> Result<PrepareOutcome, String> {
        let expr = parse(text).map_err(|e| format!("parse error: {e}"))?;
        let instance = self.instance(name)?;
        let mut guard = instance.lock().expect("instance poisoned");
        with_state!(&mut *guard, |state| self.prepare_in(state, text, expr))
    }

    fn prepare_in<M: MatrixStorage<Elem = Real>>(
        &self,
        state: &mut BackendState<M>,
        text: &str,
        expr: Expr,
    ) -> Result<PrepareOutcome, String> {
        let schema = derive_schema(&state.instance)?;
        typecheck(&expr, &schema).map_err(|e| format!("type error: {e}"))?;
        let fingerprint = expr_fingerprint(&expr);
        if let Some(qid) = state
            .prepared
            .iter()
            .position(|p| p.fingerprint == fingerprint)
        {
            return Ok(PrepareOutcome {
                qid,
                reused_statement: true,
                reused_plan: true,
                plan_nodes: state.plan.as_ref().map(|p| p.nodes().len()).unwrap_or(0),
                plan_fingerprint: state
                    .plan
                    .as_ref()
                    .map(|p| p.structure_fingerprint())
                    .unwrap_or(0),
            });
        }
        state.prepared.push(PreparedQuery {
            text: text.to_string(),
            expr,
            fingerprint,
        });
        let stats = InstanceStats::from_instance(&state.instance);
        let mut key_hasher = std::collections::hash_map::DefaultHasher::new();
        for p in &state.prepared {
            p.fingerprint.hash(&mut key_hasher);
        }
        let key = (key_hasher.finish(), stats.schema_fingerprint());
        let mut reused_plan = true;
        let plan = {
            let mut plan_cache = self.plan_cache.lock().expect("plan cache poisoned");
            if let Some(plan) = plan_cache.get(&key) {
                plan
            } else {
                reused_plan = false;
                let queries: Vec<Expr> = state.prepared.iter().map(|p| p.expr.clone()).collect();
                let mut plan = self.engine.plan(&queries, &state.instance);
                // Every node is memoized: a prepared query re-executed on
                // an unchanged instance is answered by one root-cache hit.
                plan.mark_all_cacheable();
                let plan = Arc::new(plan);
                plan_cache.insert(key, Arc::clone(&plan));
                plan
            }
        };
        // The plan's node ids changed; start the shared cache cold.
        state.cache = vec![None; plan.nodes().len()];
        state.plan = Some(Arc::clone(&plan));
        Ok(PrepareOutcome {
            qid: state.prepared.len() - 1,
            reused_statement: false,
            reused_plan,
            plan_nodes: plan.nodes().len(),
            plan_fingerprint: plan.structure_fingerprint(),
        })
    }

    /// Executes prepared queries through the instance's persistent memo
    /// cache, returning one wire result per query id.
    pub fn exec(&self, name: &str, qids: &[usize]) -> Result<Vec<WireResult>, String> {
        let instance = self.instance(name)?;
        let mut guard = instance.lock().expect("instance poisoned");
        with_state!(&mut *guard, |state| self.exec_in(state, qids))
    }

    fn exec_in<M: MatrixStorage<Elem = Real>>(
        &self,
        state: &mut BackendState<M>,
        qids: &[usize],
    ) -> Result<Vec<WireResult>, String> {
        let plan = state
            .plan
            .as_ref()
            .ok_or_else(|| "no prepared queries on this instance".to_string())?;
        for &qid in qids {
            if qid >= state.prepared.len() {
                return Err(format!("unknown query id {qid}"));
            }
        }
        let cache = std::mem::take(&mut state.cache);
        let mut exec = Executor::with_cache(
            plan,
            &state.instance,
            &self.registry,
            self.engine.exec_options,
            cache,
        );
        let mut results = Vec::with_capacity(qids.len());
        let mut outcome = Ok(());
        for &qid in qids {
            let before = exec.stats();
            match exec.run_shared(plan.roots()[qid]) {
                Ok(value) => results.push(wire_result(
                    value.as_ref(),
                    exec.stats().since(&before),
                    plan.nodes().len(),
                )),
                Err(e) => {
                    outcome = Err(format!("eval error: {e}"));
                    break;
                }
            }
        }
        state.cache = exec.into_cache();
        outcome.map(|_| results)
    }

    /// One-shot query: parse + typecheck + plan + evaluate, bypassing the
    /// prepared-statement machinery and its persistent cache entirely.
    /// This is the per-request-cost baseline `EXEC` is measured against.
    pub fn query(&self, name: &str, text: &str) -> Result<WireResult, String> {
        let expr = parse(text).map_err(|e| format!("parse error: {e}"))?;
        let instance = self.instance(name)?;
        let mut guard = instance.lock().expect("instance poisoned");
        with_state!(&mut *guard, |state| {
            let schema = derive_schema(&state.instance)?;
            typecheck(&expr, &schema).map_err(|e| format!("type error: {e}"))?;
            let plan = self
                .engine
                .plan(std::slice::from_ref(&expr), &state.instance);
            let mut exec = Executor::new(
                &plan,
                &state.instance,
                &self.registry,
                self.engine.exec_options,
            );
            let value = exec
                .run_shared(plan.roots()[0])
                .map_err(|e| format!("eval error: {e}"))?;
            Ok(wire_result(
                value.as_ref(),
                exec.stats(),
                plan.nodes().len(),
            ))
        })
    }

    /// Applies in-place point updates to a matrix variable, then drops
    /// exactly the cached plan nodes whose value depends on it.  Returns
    /// `(entries applied, cache entries invalidated)`.
    pub fn update(
        &self,
        name: &str,
        var: &str,
        entries: &[(usize, usize, f64)],
    ) -> Result<(usize, u64), String> {
        let instance = self.instance(name)?;
        let mut guard = instance.lock().expect("instance poisoned");
        with_state!(&mut *guard, |state| {
            let matrix = state
                .instance
                .matrix_mut(var)
                .ok_or_else(|| format!("unknown variable `{var}`"))?;
            let mut applied = 0usize;
            let mut outcome = Ok(());
            for &(i, j, v) in entries {
                if let Err(e) = matrix.set_entry(i, j, Real(v)) {
                    outcome = Err(e.to_string());
                    break;
                }
                applied += 1;
            }
            // Invalidate even when a later entry of the batch failed: the
            // entries before it *did* mutate the matrix, and a cache that
            // outlives them would serve stale results.
            let invalidated = if applied > 0 {
                state
                    .plan
                    .as_ref()
                    .map(|plan| plan.invalidate_dependents_in(&mut state.cache, var))
                    .unwrap_or(0)
            } else {
                0
            };
            outcome.map(|_| (applied, invalidated))
        })
    }
}

/// Derives the typing schema of an instance: every matrix variable is
/// typed by matching its concrete shape against the instance's size-symbol
/// assignments (dimension 1 is the distinguished symbol `1`; other values
/// resolve to the first size symbol carrying them, in name order).
fn derive_schema<M: MatrixStorage<Elem = Real>>(
    instance: &Instance<Real, M>,
) -> Result<Schema, String> {
    let dim_for = |value: usize| -> Result<Dim, String> {
        if value == 1 {
            return Ok(Dim::One);
        }
        instance
            .dims()
            .find(|&(_, n)| n == value)
            .map(|(sym, _)| Dim::sym(sym.clone()))
            .ok_or_else(|| format!("no size symbol assigned the value {value} (use DIM)"))
    };
    let mut schema = Schema::new();
    for (var, matrix) in instance.matrices() {
        let (rows, cols) = matrix.shape();
        schema.declare(var.clone(), MatrixType::new(dim_for(rows)?, dim_for(cols)?));
    }
    Ok(schema)
}

fn wire_result<M: MatrixStorage<Elem = Real>>(
    value: &M,
    stats: matlang_engine::ExecStats,
    plan_nodes: usize,
) -> WireResult {
    WireResult {
        rows: value.rows(),
        cols: value.cols(),
        entries: value
            .nonzero_entries()
            .into_iter()
            .map(|(i, j, v)| (i, j, v.to_f64()))
            .collect(),
        stats,
        plan_nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matlang_core::evaluate;

    fn seeded_store() -> Store {
        let store = Store::new();
        store.create_instance("g", true).unwrap();
        store.set_dim("g", "n", 4).unwrap();
        store
            .load_matrix(
                "g",
                "G",
                4,
                4,
                vec![(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (3, 0, 4.0)],
            )
            .unwrap();
        store
    }

    #[test]
    fn instance_lifecycle() {
        let store = seeded_store();
        assert_eq!(store.list_instances(), vec!["g".to_string()]);
        assert!(store.create_instance("g", false).is_err());
        store.create_instance("h", false).unwrap();
        assert_eq!(store.list_instances().len(), 2);
        store.drop_instance("h").unwrap();
        assert!(store.drop_instance("h").is_err());
        assert!(store.prepare("missing", "G").is_err());
    }

    #[test]
    fn prepare_exec_matches_local_evaluation() {
        let store = seeded_store();
        let expr = Expr::var("G").t().mm(Expr::var("G"));
        let out = store.prepare("g", &expr.to_string()).unwrap();
        assert!(!out.reused_statement);
        let results = store.exec("g", &[out.qid]).unwrap();
        let local: Instance<Real> = Instance::new().with_dim("n", 4).with_matrix(
            "G",
            Matrix::from_f64_rows(&[
                &[0.0, 1.0, 0.0, 0.0],
                &[0.0, 0.0, 2.0, 0.0],
                &[0.0, 0.0, 0.0, 3.0],
                &[4.0, 0.0, 0.0, 0.0],
            ])
            .unwrap(),
        );
        let expected = evaluate(&expr, &local, &FunctionRegistry::standard_field()).unwrap();
        let got = dense_of(&results[0]);
        assert_eq!(got, expected);
        // Re-executing is answered by the warm cache: one root hit.
        let again = store.exec("g", &[out.qid]).unwrap();
        assert_eq!(again[0].stats.cache_misses, 0);
        assert_eq!(again[0].stats.cache_hits, 1);
        // Re-preparing the same text reuses the statement and the cache.
        let re = store.prepare("g", &expr.to_string()).unwrap();
        assert!(re.reused_statement);
        assert_eq!(re.qid, out.qid);
        let third = store.exec("g", &[out.qid]).unwrap();
        assert_eq!(third[0].stats.cache_misses, 0);
    }

    #[test]
    fn update_invalidates_only_dependents() {
        let store = seeded_store();
        store
            .load_matrix("g", "H", 4, 4, vec![(0, 0, 1.0), (1, 1, 1.0)])
            .unwrap();
        let over_g = store.prepare("g", "(transpose(G) * G)").unwrap();
        let over_h = store.prepare("g", "(H + H)").unwrap();
        // Warm both caches.
        store.exec("g", &[over_g.qid, over_h.qid]).unwrap();
        let (applied, invalidated) = store.update("g", "H", &[(2, 2, 5.0)]).unwrap();
        assert_eq!(applied, 1);
        assert!(invalidated >= 2, "Var(H) and H+H must drop");
        // The G query is untouched: answered fully from cache.
        let g_again = store.exec("g", &[over_g.qid]).unwrap();
        assert_eq!(g_again[0].stats.cache_misses, 0);
        // The H query recomputes and sees the new entry.
        let h_again = store.exec("g", &[over_h.qid]).unwrap();
        assert!(h_again[0].stats.cache_misses > 0);
        assert!(h_again[0]
            .entries
            .iter()
            .any(|&(i, j, v)| (i, j, v) == (2, 2, 10.0)));
        // Updating an unknown variable or out-of-bounds entry fails.
        assert!(store.update("g", "missing", &[(0, 0, 1.0)]).is_err());
        assert!(store.update("g", "H", &[(9, 9, 1.0)]).is_err());
    }

    #[test]
    fn failed_update_batch_still_invalidates_applied_entries() {
        let store = seeded_store();
        store
            .load_matrix("g", "H", 4, 4, vec![(0, 0, 1.0)])
            .unwrap();
        let qid = store.prepare("g", "(H + H)").unwrap().qid;
        store.exec("g", &[qid]).unwrap(); // warm
                                          // First entry applies, second is out of bounds: the batch errors,
                                          // but the applied mutation must not leave a stale cache behind.
        assert!(store.update("g", "H", &[(0, 0, 7.0), (9, 9, 1.0)]).is_err());
        let result = store.exec("g", &[qid]).unwrap();
        assert!(
            result[0].stats.cache_misses > 0,
            "cache must drop after a partially-applied UPDATE"
        );
        assert!(result[0]
            .entries
            .iter()
            .any(|&(i, j, v)| (i, j, v) == (0, 0, 14.0)));
    }

    #[test]
    fn dim_changes_clear_the_memo_cache() {
        let store = seeded_store();
        // Σv:n. vᵀ·v counts the iterations — its value IS the dimension.
        let qid = store
            .prepare("g", "(sum v:n . (transpose(v) * v))")
            .unwrap()
            .qid;
        let four = store.exec("g", &[qid]).unwrap();
        assert_eq!(four[0].entries, vec![(0, 0, 4.0)]);
        store.set_dim("g", "n", 8).unwrap();
        let eight = store.exec("g", &[qid]).unwrap();
        assert_eq!(
            eight[0].entries,
            vec![(0, 0, 8.0)],
            "a DIM change must not serve results cached under the old value"
        );
    }

    #[test]
    fn plans_are_shared_across_same_shape_instances() {
        let store = seeded_store();
        store.create_instance("h", true).unwrap();
        store.set_dim("h", "n", 4).unwrap();
        store
            .load_matrix("h", "G", 4, 4, vec![(0, 0, 7.0)])
            .unwrap();
        let first = store.prepare("g", "(G * G)").unwrap();
        assert!(!first.reused_plan);
        let second = store.prepare("h", "(G * G)").unwrap();
        assert!(second.reused_plan, "same queries + same schema → same plan");
        // Different shape → different plan cache key.
        store.create_instance("k", true).unwrap();
        store.set_dim("k", "n", 5).unwrap();
        store
            .load_matrix("k", "G", 5, 5, vec![(0, 0, 7.0)])
            .unwrap();
        let third = store.prepare("k", "(G * G)").unwrap();
        assert!(!third.reused_plan);
    }

    #[test]
    fn plan_cache_evicts_in_lru_order() {
        // Capacity 2, three distinct plan keys; a `get` must refresh
        // recency so the *untouched* entry is the one evicted.
        let store = Store::with_plan_cache_capacity(2);
        let seed = |name: &str| {
            store.create_instance(name, true).unwrap();
            store.set_dim(name, "n", 4).unwrap();
            store
                .load_matrix(name, "G", 4, 4, vec![(0, 1, 1.0), (2, 3, 2.0)])
                .unwrap();
        };
        for name in ["a", "b", "c", "d", "e", "f"] {
            seed(name);
        }
        assert!(!store.prepare("a", "(G * G)").unwrap().reused_plan); // insert k1
        assert!(!store.prepare("b", "(G + G)").unwrap().reused_plan); // insert k2
        assert_eq!(store.plan_cache_len(), 2);
        assert!(store.prepare("c", "(G * G)").unwrap().reused_plan); // touch k1
        assert!(!store.prepare("d", "transpose(G)").unwrap().reused_plan); // k3 evicts k2
        assert_eq!(store.plan_cache_len(), 2);
        assert!(
            store.prepare("f", "(G * G)").unwrap().reused_plan,
            "k1 was refreshed by the earlier hit and must have survived the eviction"
        );
        assert!(
            !store.prepare("e", "(G + G)").unwrap().reused_plan,
            "k2 was least recently used and must have been evicted"
        );
    }

    #[test]
    fn prepare_reports_the_rewritten_plan_fingerprint() {
        let store = seeded_store();
        let out = store.prepare("g", "(transpose(G) * G)").unwrap();
        assert_ne!(out.plan_fingerprint, 0);
        // Re-preparing the same text reports the same plan variant.
        let again = store.prepare("g", "(transpose(G) * G)").unwrap();
        assert!(again.reused_statement);
        assert_eq!(again.plan_fingerprint, out.plan_fingerprint);
        // Preparing another statement replaces the batch plan: new DAG,
        // new fingerprint.
        let extended = store.prepare("g", "(G + G)").unwrap();
        assert_ne!(extended.plan_fingerprint, out.plan_fingerprint);
    }

    #[test]
    fn diag_products_run_on_the_fused_kernels() {
        let store = seeded_store();
        store
            .load_matrix("g", "u", 4, 1, vec![(0, 0, 2.0), (2, 0, 3.0)])
            .unwrap();
        let qid = store.prepare("g", "(diag(u) * G)").unwrap().qid;
        let results = store.exec("g", &[qid]).unwrap();
        assert_eq!(results[0].stats.fused_products, 1);
        // diag([2,0,3,0]) · G scales row 0 by 2 and row 2 by 3 of the
        // 4-cycle matrix (0→1 weight 1, 2→3 weight 3).
        assert!(results[0].entries.contains(&(0, 1, 2.0)));
        assert!(results[0].entries.contains(&(2, 3, 9.0)));
        assert_eq!(results[0].entries.len(), 2);
    }

    #[test]
    fn query_is_stateless_and_prepare_rejects_bad_queries() {
        let store = seeded_store();
        let result = store.query("g", "(G + G)").unwrap();
        assert_eq!(result.rows, 4);
        assert!(store.prepare("g", "(G +").is_err(), "parse error");
        assert!(store.prepare("g", "missingvar").is_err(), "type error");
        assert!(
            store.prepare("g", "(G . G)").is_err(),
            "lexical garbage is rejected"
        );
        assert!(store.query("g", "(const 1) )").is_err());
    }

    #[test]
    fn generated_matrices_are_usable() {
        let store = Store::new();
        store.create_instance("r", false).unwrap();
        store.set_dim("r", "n", 32).unwrap();
        let nnz = store
            .generate_matrix(
                "r",
                "G",
                "n",
                GenKind::ErdosRenyi {
                    avg_degree: 3.0,
                    seed: 7,
                },
            )
            .unwrap();
        assert!(nnz > 0);
        let out = store
            .prepare("r", "(transpose(ones(G)) * (G * ones(G)))")
            .unwrap();
        let results = store.exec("r", &[out.qid]).unwrap();
        assert_eq!((results[0].rows, results[0].cols), (1, 1));
        assert!(store
            .generate_matrix(
                "r",
                "G",
                "m",
                GenKind::ErdosRenyi {
                    avg_degree: 1.0,
                    seed: 1
                }
            )
            .is_err());
    }

    /// Rebuilds the dense matrix a [`WireResult`] denotes.
    pub fn dense_of(result: &WireResult) -> Matrix<Real> {
        let mut m = Matrix::zeros(result.rows, result.cols);
        for &(i, j, v) in &result.entries {
            m.set(i, j, Real(v)).unwrap();
        }
        m
    }
}
