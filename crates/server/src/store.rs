//! The named instance store and the prepared-query machinery.
//!
//! A [`Store`] owns:
//!
//! * a `RwLock`-guarded map from instance name to [`ServerInstance`] — the
//!   read lock is enough to *find* an instance, per-instance `Mutex`es
//!   serialize work on one instance while different instances proceed in
//!   parallel on different worker threads;
//! * a process-wide **plan cache** keyed by `(queries fingerprint, schema
//!   fingerprint, stats generation)` ([`matlang_engine::expr_fingerprint`]
//!   / [`InstanceStats::schema_fingerprint`] / the instance's adaptive
//!   re-plan counter): two instances with the same shape preparing the
//!   same queries share one hash-consed [`Plan`].
//!   The cache is bounded at [`PLAN_CACHE_CAPACITY`] with
//!   least-recently-used eviction, so a long-lived server preparing ever
//!   new query batches cannot grow it without bound.  With the engine's
//!   cost-based rewrite layer, the cached plan is the *rewritten* DAG —
//!   its chain association and fused kernels were chosen from the
//!   statistics of the instance that first planned it.  Any such variant
//!   is semantically valid for every same-schema instance (the rules are
//!   semiring identities over the shapes the schema fixes), merely tuned
//!   for the first planner's nnz profile; [`Plan::structure_fingerprint`]
//!   is reported on every `PREPARE` (wire token `fp=`) so clients can
//!   tell which variant they got.
//!
//! # Observed-statistics feedback and adaptive re-planning
//!
//! Every `EXEC` cheaply harvests the executor's always-on per-node
//! observations (actual output shape/nnz of every computed node,
//! [`matlang_engine::Executor::observed_samples`]) into the instance's
//! [`ObservedStats`] store.  Before executing, the store compares the
//! instance's **current** per-variable nnz against the snapshot the
//! active plan was built from: when any plan-referenced variable has
//! drifted past the configurable ratio (`MATLANG_REPLAN_DRIFT`, default
//! 4×, runtime-overridable with [`set_replan_drift`]), the plan is
//! transparently rebuilt from fresh statistics *plus* the observed store
//! — chain association and dense/CSR representation choices re-derive
//! from executed reality instead of stale estimates.  Each re-plan bumps
//! the instance's stats generation, which is part of the plan-cache key,
//! so stale plan variants cannot be resurrected by a later `PREPARE`.
//! Re-planning never changes results — plans differ only in cost hints
//! and association, which the engine's parity gates cover — it only
//! changes how fast the next `EXEC` runs.
//!
//! Each instance computes over one of the wire-selectable semirings
//! ([`SemiringKind`], see [`ServerSemiring`]) on either the dense or the
//! adaptive sparse/dense storage backend, and carries its prepared
//! statements plus **one shared [`matlang_engine::NodeCache`]** over a
//! single plan DAG covering *all* its prepared queries (they are planned
//! as a batch, so common subterms are one node): an `EXEC` seeds an
//! [`Executor`] with the cache, runs one root, and puts the cache back,
//! which makes a repeated `EXEC` of an unchanged query a single cache hit.
//!
//! # `UPDATE`: delta propagation first, invalidation as the fallback
//!
//! A point `UPDATE` mutates matrix entries in place
//! ([`MatrixStorage::set_entry`]) and then maintains the memo cache one of
//! two ways.  When the instance's semiring has an idempotent `⊕`
//! ([`join_is_idempotent`]) and every touched entry is insert-only
//! (`old ⊕ new = new`, see [`absorbs`]), the update is **propagated**: its
//! sparse delta flows through the plan DAG patching cached values via lazy
//! overlays ([`matlang_engine::delta`]), so standing queries stay warm and
//! the next `EXEC` answers from cache.  Otherwise the server falls back to
//! dropping exactly the cached nodes depending on the touched variable
//! ([`Plan::invalidate_dependents_in`]) and records *why* in the
//! [`UpdateOutcome`] — standing queries over other variables keep their
//! warm results either way.

use crate::error::ServerError;
use crate::persist::{self, Snapshot, Wal, WalRecord};
use crate::protocol::{ExecStatsWire, GenKind, SemiringKind, WireResult};
use matlang_core::{typecheck, Dim, Expr, FunctionRegistry, Instance, MatrixType, Schema};
use matlang_engine::delta::{absorbs, join_is_idempotent, propagate, DeltaFallback, DeltaOverlay};
use matlang_engine::{expr_fingerprint, Engine, Executor, InstanceStats, ObservedStats, Plan};
use matlang_matrix::{
    sparse_erdos_renyi, sparse_power_law, Matrix, MatrixCodec, MatrixRepr, MatrixStorage,
    SparseMatrix,
};
use matlang_parser::parse;
use matlang_semiring::{Boolean, MinPlus, Nat, Real, Semiring};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// Default observed-density drift ratio past which the next `EXEC`
/// re-plans (see [`replan_drift`]).
pub const DEFAULT_REPLAN_DRIFT: f64 = 4.0;

/// Runtime override for the drift threshold, stored as `f64` bits; NaN
/// bits are the "unset" sentinel (NaN can never be a meaningful ratio).
/// The literal is Rust's canonical quiet-NaN bit pattern — spelled out
/// because `f64::NAN.to_bits()` is not `const` on the MSRV; the
/// `nan_sentinel_matches_f64_nan` test pins the equivalence.
static REPLAN_DRIFT_OVERRIDE: AtomicU64 = AtomicU64::new(NAN_BITS);
const NAN_BITS: u64 = 0x7ff8_0000_0000_0000;

/// One-time latch for the `MATLANG_REPLAN_DRIFT` environment variable.
static REPLAN_DRIFT_ENV: OnceLock<Option<f64>> = OnceLock::new();

/// The observed-density ratio past which an instance's next `EXEC`
/// transparently re-plans: runtime override ([`set_replan_drift`]) if
/// set, else the `MATLANG_REPLAN_DRIFT` environment variable, else
/// [`DEFAULT_REPLAN_DRIFT`].  A variable drifts when
/// `(max(nnz)+1)/(min(nnz)+1)` between the planned-against snapshot and
/// the current instance exceeds this ratio (the `+1` keeps the ratio
/// finite through the empty↔dense flip that matters most).
pub fn replan_drift() -> f64 {
    let bits = REPLAN_DRIFT_OVERRIDE.load(Ordering::Relaxed);
    let overridden = f64::from_bits(bits);
    if !overridden.is_nan() {
        return overridden;
    }
    REPLAN_DRIFT_ENV
        .get_or_init(|| {
            std::env::var("MATLANG_REPLAN_DRIFT")
                .ok()
                .and_then(|v| v.trim().parse::<f64>().ok())
                .filter(|v| *v >= 1.0)
        })
        .unwrap_or(DEFAULT_REPLAN_DRIFT)
}

/// Overrides the drift threshold process-wide (`None` restores the
/// environment/default resolution).  In-process mutation beats env
/// fiddling for tests: `std::env::set_var` is racy across threads.
pub fn set_replan_drift(ratio: Option<f64>) {
    let bits = match ratio {
        Some(r) if r >= 1.0 => r.to_bits(),
        _ => f64::NAN.to_bits(),
    };
    REPLAN_DRIFT_OVERRIDE.store(bits, Ordering::Relaxed);
}

/// Runtime override for the soft memory budget: `u64::MAX` means "unset,
/// fall through to the environment", `0` means "explicitly unlimited".
/// Neither sentinel is a meaningful budget, so no real value is shadowed.
static MEM_BUDGET_OVERRIDE: AtomicU64 = AtomicU64::new(u64::MAX);

/// One-time latch for the `MATLANG_MEM_BUDGET` environment variable.
static MEM_BUDGET_ENV: OnceLock<Option<u64>> = OnceLock::new();

/// Parses a byte budget: plain bytes, or with a binary suffix `k`/`m`/`g`
/// (case-insensitive, powers of 1024 — `64m` is 64·2²⁰ bytes).
fn parse_mem_budget(raw: &str) -> Option<u64> {
    let v = raw.trim();
    if v.is_empty() {
        return None;
    }
    let (digits, shift) = match v.as_bytes()[v.len() - 1].to_ascii_lowercase() {
        b'k' => (&v[..v.len() - 1], 10u32),
        b'm' => (&v[..v.len() - 1], 20),
        b'g' => (&v[..v.len() - 1], 30),
        _ => (v, 0),
    };
    digits
        .trim()
        .parse::<u64>()
        .ok()
        .and_then(|n| n.checked_mul(1u64 << shift))
        .filter(|bytes| *bytes > 0)
}

/// The soft memory budget in bytes, if one is configured: runtime
/// override ([`set_mem_budget`]) if set, else the `MATLANG_MEM_BUDGET`
/// environment variable (plain bytes or `k`/`m`/`g` binary suffixes),
/// else unlimited.  When the accounted bytes across every instance
/// exceed this figure, `HEALTH` reports `status=pressure` and the store
/// sheds *derived* state — cold plan-cache entries, then idle instances'
/// memo caches and overlays — after each mutating request.  Primary data
/// is never shed, so a budget smaller than the loaded matrices simply
/// keeps the server in (reported) pressure.
pub fn mem_budget() -> Option<u64> {
    match MEM_BUDGET_OVERRIDE.load(Ordering::Relaxed) {
        u64::MAX => *MEM_BUDGET_ENV.get_or_init(|| {
            std::env::var("MATLANG_MEM_BUDGET")
                .ok()
                .and_then(|v| parse_mem_budget(&v))
        }),
        0 => None,
        bytes => Some(bytes),
    }
}

/// Overrides the soft memory budget process-wide.  `Some(0)` forces
/// "unlimited" regardless of the environment; `None` restores the
/// environment/default resolution.  Same rationale as
/// [`set_replan_drift`]: in-process mutation beats `std::env::set_var`
/// for tests.
pub fn set_mem_budget(budget: Option<u64>) {
    let sentinel = match budget {
        Some(bytes) if bytes > 0 && bytes < u64::MAX => bytes,
        Some(_) => 0,
        None => u64::MAX,
    };
    MEM_BUDGET_OVERRIDE.store(sentinel, Ordering::Relaxed);
}

/// Default WAL compaction threshold: once a persisted instance's log
/// exceeds this many bytes, the next applied `UPDATE` folds it into a
/// fresh snapshot (see [`StoreConfigBuilder::wal_compact`] and the
/// `MATLANG_WAL_COMPACT` environment variable).
pub const DEFAULT_WAL_COMPACT: u64 = 1 << 20;

/// One-time latch for the `MATLANG_WAL_COMPACT` environment variable
/// (same `k`/`m`/`g` binary-suffix grammar as `MATLANG_MEM_BUDGET`).
static WAL_COMPACT_ENV: OnceLock<Option<u64>> = OnceLock::new();

fn wal_compact_env() -> Option<u64> {
    *WAL_COMPACT_ENV.get_or_init(|| {
        std::env::var("MATLANG_WAL_COMPACT")
            .ok()
            .and_then(|v| parse_mem_budget(&v))
    })
}

/// One-time latch for the `MATLANG_DATA_DIR` environment variable — the
/// default data directory a [`StoreConfig`] starts from.
static DATA_DIR_ENV: OnceLock<Option<PathBuf>> = OnceLock::new();

fn data_dir_env() -> Option<PathBuf> {
    DATA_DIR_ENV
        .get_or_init(|| {
            std::env::var_os("MATLANG_DATA_DIR")
                .filter(|v| !v.is_empty())
                .map(PathBuf::from)
        })
        .clone()
}

/// Construction-time configuration for a [`Store`], built with
/// [`StoreConfig::builder`] and consumed by [`Store::with_config`] /
/// [`Store::open`].  Collapses the knobs that used to be scattered across
/// `Store::with_plan_cache_capacity`, [`set_mem_budget`] and
/// [`set_replan_drift`] call sites (mirroring the `Engine::builder`
/// precedent), and adds the persistence pair: the data directory and the
/// WAL compaction threshold.
#[derive(Clone, Debug)]
pub struct StoreConfig {
    plan_cache_capacity: usize,
    data_dir: Option<PathBuf>,
    wal_compact: u64,
    mem_budget: Option<Option<u64>>,
    replan_drift: Option<Option<f64>>,
}

impl Default for StoreConfig {
    /// Environment-resolved defaults: `MATLANG_DATA_DIR` (no persistence
    /// when unset), `MATLANG_WAL_COMPACT` (else [`DEFAULT_WAL_COMPACT`]),
    /// plan cache at [`PLAN_CACHE_CAPACITY`], budget/drift untouched.
    fn default() -> Self {
        StoreConfig::builder().build()
    }
}

impl StoreConfig {
    /// Starts a builder from the environment-resolved defaults.
    pub fn builder() -> StoreConfigBuilder {
        StoreConfigBuilder {
            config: StoreConfig {
                plan_cache_capacity: PLAN_CACHE_CAPACITY,
                data_dir: data_dir_env(),
                wal_compact: wal_compact_env().unwrap_or(DEFAULT_WAL_COMPACT),
                mem_budget: None,
                replan_drift: None,
            },
        }
    }

    /// The configured data directory, if persistence is available.
    pub fn data_dir(&self) -> Option<&Path> {
        self.data_dir.as_deref()
    }

    /// The WAL compaction threshold in bytes.
    pub fn wal_compact(&self) -> u64 {
        self.wal_compact
    }

    /// The plan-cache bound.
    pub fn plan_cache_capacity(&self) -> usize {
        self.plan_cache_capacity
    }
}

/// Builder for [`StoreConfig`]; see [`StoreConfig::builder`].
#[derive(Clone, Debug)]
pub struct StoreConfigBuilder {
    config: StoreConfig,
}

impl StoreConfigBuilder {
    /// Bounds the process-wide plan cache (default
    /// [`PLAN_CACHE_CAPACITY`]).
    pub fn plan_cache_capacity(mut self, capacity: usize) -> Self {
        self.config.plan_cache_capacity = capacity;
        self
    }

    /// Enables persistence under `dir`: [`Store::with_config`] recovers
    /// every snapshot found there and `PERSIST <inst> on` becomes legal.
    pub fn data_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.config.data_dir = Some(dir.into());
        self
    }

    /// Disables persistence even when `MATLANG_DATA_DIR` is set.
    pub fn no_data_dir(mut self) -> Self {
        self.config.data_dir = None;
        self
    }

    /// Sets the WAL size (bytes) past which an applied `UPDATE` triggers
    /// compaction into a fresh snapshot (default `MATLANG_WAL_COMPACT`,
    /// else [`DEFAULT_WAL_COMPACT`]).
    pub fn wal_compact(mut self, bytes: u64) -> Self {
        self.config.wal_compact = bytes.max(1);
        self
    }

    /// Applies [`set_mem_budget`] when the store is built (`Some(0)`
    /// forces unlimited; the setting is process-wide, recorded here so
    /// one builder call configures the whole store).
    pub fn mem_budget(mut self, budget: Option<u64>) -> Self {
        self.config.mem_budget = Some(budget);
        self
    }

    /// Applies [`set_replan_drift`] when the store is built (process-wide,
    /// same caveat as [`Self::mem_budget`]).
    pub fn replan_drift(mut self, ratio: Option<f64>) -> Self {
        self.config.replan_drift = Some(ratio);
        self
    }

    /// Finishes the configuration.
    pub fn build(self) -> StoreConfig {
        self.config
    }
}

/// One prepared statement: the query text, its parsed form and its
/// fingerprint (the dedup key — re-preparing the same text returns the
/// existing id without disturbing the warm cache).
#[derive(Clone, Debug)]
pub struct PreparedQuery {
    /// The query text as received.
    pub text: String,
    /// The parsed, type-checked expression.
    pub expr: Expr,
    /// [`expr_fingerprint`] of `expr`.
    pub fingerprint: u64,
}

/// A semiring the server can host instances over: the [`Semiring`] algebra
/// plus its wire name and the pointwise-function registry its instances
/// resolve `apply` against.
pub trait ServerSemiring: Semiring {
    /// The wire token ([`SemiringKind::name`]) for this semiring.
    const NAME: &'static str;

    /// The function registry instances of this semiring carry.
    fn registry() -> FunctionRegistry<Self>;
}

impl ServerSemiring for Real {
    const NAME: &'static str = "real";

    /// The paper's standard pointwise functions (`div`, `gt0`, …).
    fn registry() -> FunctionRegistry<Real> {
        FunctionRegistry::standard_field()
    }
}

impl ServerSemiring for Boolean {
    const NAME: &'static str = "bool";

    fn registry() -> FunctionRegistry<Boolean> {
        FunctionRegistry::new()
    }
}

impl ServerSemiring for Nat {
    const NAME: &'static str = "nat";

    fn registry() -> FunctionRegistry<Nat> {
        FunctionRegistry::new()
    }
}

impl ServerSemiring for MinPlus {
    const NAME: &'static str = "minplus";

    fn registry() -> FunctionRegistry<MinPlus> {
        FunctionRegistry::new()
    }
}

/// Byte-level resource account of one instance.  Byte figures count
/// *live payload* (`len`-based, per [`MatrixStorage::heap_bytes`]), not
/// allocator capacity, so they are reproducible from shapes and nnz
/// alone.  The account is maintained at the mutation points — LOAD /
/// UPDATE / DIM / PREPARE / EXEC / eviction — from O(1) per-slot length
/// reads; matrix payloads are never walked.
#[derive(Clone, Copy, Debug, Default)]
pub struct ResourceAccount {
    /// Bytes held by the instance's matrix variables.
    pub data_bytes: usize,
    /// Resident entries in the prepared-plan memo cache.
    pub cache_entries: usize,
    /// Bytes held by resident memo-cache values.
    pub cache_bytes: usize,
    /// Bytes held by pending delta overlays.
    pub overlay_bytes: usize,
    /// Cumulative `EXEC` statements answered by this instance.
    pub exec_count: u64,
    /// Cumulative wall time spent executing them, in microseconds.
    pub exec_time_us: u64,
    /// Monotonic stamp (µs) of the last accounted mutation — the
    /// idleness key pressure shedding ranks instances by.
    pub last_active_us: u64,
    /// What the registry gauges currently carry for this instance, so a
    /// re-publish adjusts the process-wide aggregates by a delta instead
    /// of re-walking every instance.
    published: PublishedAccount,
    /// The instance's labelled `instance_bytes{name="…"}` gauge handle,
    /// resolved once — the publish hot path must not re-format the label
    /// or take the registry lock per request.
    labelled: Option<&'static matlang_obs::metrics::Gauge>,
}

/// The figures last pushed into the metrics registry for one instance.
#[derive(Clone, Copy, Debug, Default)]
struct PublishedAccount {
    total: i64,
    cache_entries: i64,
    cache_bytes: i64,
    overlay_bytes: i64,
}

impl ResourceAccount {
    /// Total accounted bytes: data + memo cache + overlays.
    pub fn total_bytes(&self) -> usize {
        self.data_bytes + self.cache_bytes + self.overlay_bytes
    }
}

/// Resolves the labelled per-instance gauge (registry lock + label
/// formatting — done once per instance, cached in the account).
fn labelled_gauge(name: &str) -> &'static matlang_obs::metrics::Gauge {
    matlang_obs::registry().gauge(&format!("instance_bytes{{name=\"{name}\"}}"))
}

/// Pushes one instance's account into the metrics registry: the labelled
/// `instance_bytes{name="…"}` gauge plus delta adjustments to the
/// process-wide `instance_bytes` / `memo_cache_*` / `overlay_bytes`
/// aggregates.  No-op while observability is disabled — gauge writes are
/// gated anyway, and skipping keeps `published` consistent with what the
/// registry actually absorbed.
fn publish_account(name: &str, account: &mut ResourceAccount) {
    if !matlang_obs::enabled() {
        return;
    }
    let now = PublishedAccount {
        total: account.total_bytes() as i64,
        cache_entries: account.cache_entries as i64,
        cache_bytes: account.cache_bytes as i64,
        overlay_bytes: account.overlay_bytes as i64,
    };
    account
        .labelled
        .get_or_insert_with(|| labelled_gauge(name))
        .set(now.total);
    let was = account.published;
    matlang_obs::gauge!("instance_bytes").add(now.total - was.total);
    matlang_obs::gauge!("memo_cache_entries").add(now.cache_entries - was.cache_entries);
    matlang_obs::gauge!("memo_cache_bytes").add(now.cache_bytes - was.cache_bytes);
    matlang_obs::gauge!("overlay_bytes").add(now.overlay_bytes - was.overlay_bytes);
    account.published = now;
}

/// Retires a dropped instance's contribution: zeroes its labelled gauge
/// and subtracts its published figures from the aggregates.
fn unpublish_account(name: &str, account: &mut ResourceAccount) {
    if !matlang_obs::enabled() {
        return;
    }
    account
        .labelled
        .get_or_insert_with(|| labelled_gauge(name))
        .set(0);
    let was = account.published;
    matlang_obs::gauge!("instance_bytes").add(-was.total);
    matlang_obs::gauge!("memo_cache_entries").add(-was.cache_entries);
    matlang_obs::gauge!("memo_cache_bytes").add(-was.cache_bytes);
    matlang_obs::gauge!("overlay_bytes").add(-was.overlay_bytes);
    account.published = PublishedAccount::default();
}

/// Per-instance durability state: the open WAL plus the gauge bookkeeping
/// needed to retract this instance's `wal_bytes` contribution exactly.
/// Present only while the instance is persisted (`PERSIST <inst> on`, or
/// recovered from disk by [`Store::open`]).
pub(crate) struct Persistence {
    /// The open, fsync-per-append write-ahead log.
    wal: Wal,
    /// Size of the newest snapshot written for this instance, in bytes
    /// (0 until the first snapshot of this process's session).
    snapshot_bytes: u64,
    /// What the aggregate `wal_bytes` gauge currently carries for this
    /// instance, so publishes adjust by a delta and a drop retracts
    /// exactly what was added.
    published_wal_bytes: i64,
}

/// Refreshes this instance's share of the aggregate `wal_bytes` gauge.
/// Gated like [`publish_account`]: skipping while observability is off
/// keeps `published_wal_bytes` consistent with what the registry absorbed.
fn publish_wal_bytes(p: &mut Persistence) {
    if !matlang_obs::enabled() {
        return;
    }
    let now = p.wal.bytes as i64;
    matlang_obs::gauge!("wal_bytes").add(now - p.published_wal_bytes);
    p.published_wal_bytes = now;
}

/// Retires this instance's `wal_bytes` contribution (`DROP`, `PERSIST
/// off`, or a WAL write failure degrading the instance to non-persisted).
fn retract_wal_bytes(p: &mut Persistence) {
    matlang_obs::gauge!("wal_bytes").add(-p.published_wal_bytes);
    p.published_wal_bytes = 0;
}

/// Serializes an instance's durable content — dims and matrices, in the
/// instance's deterministic name order — into a [`Snapshot`].  Runtime
/// state (memo cache, overlays, plans, observed statistics) is deliberately
/// absent: it rebuilds lazily after a restore.
fn encode_snapshot<K: ServerSemiring, M: MatrixStorage<Elem = K> + MatrixCodec>(
    state: &BackendState<K, M>,
    backend: &'static str,
    covered_seq: u64,
) -> Snapshot {
    let dims = state
        .instance
        .dims()
        .map(|(sym, value)| (sym.clone(), value as u64))
        .collect();
    let vars = state
        .instance
        .matrices()
        .map(|(name, matrix)| {
            let mut payload = Vec::new();
            matrix.encode_matrix(&mut payload);
            (name.clone(), payload)
        })
        .collect();
    Snapshot {
        semiring: K::NAME.to_string(),
        backend: backend.to_string(),
        covered_seq,
        dims,
        vars,
    }
}

/// Rebuilds an instance's dims and matrices from a decoded [`Snapshot`].
/// The memo cache stays empty and no plan exists yet — exactly the state
/// of a freshly created instance that was `LOAD`ed.
fn populate_from_snapshot<K: ServerSemiring, M: MatrixStorage<Elem = K> + MatrixCodec>(
    state: &mut BackendState<K, M>,
    snap: &Snapshot,
) -> Result<(), ServerError> {
    for (sym, value) in &snap.dims {
        let value = usize::try_from(*value)
            .map_err(|_| ServerError::storage(format!("dim `{sym}` overflows usize")))?;
        state.instance.set_dim(sym.clone(), value);
    }
    for (var, payload) in &snap.vars {
        let mut buf = payload.as_slice();
        let matrix = M::decode_matrix(&mut buf)
            .map_err(|e| ServerError::storage(format!("variable `{var}`: {e}")))?;
        if !buf.is_empty() {
            return Err(ServerError::storage(format!(
                "variable `{var}`: {} trailing bytes after payload",
                buf.len()
            )));
        }
        state.instance.set_matrix(var.clone(), matrix);
    }
    Ok(())
}

/// Re-applies the WAL suffix onto a snapshot-restored instance: every
/// record with `seq > covered_seq`, entry by entry through the same
/// [`MatrixStorage::set_entry`] the original `UPDATE` used, so the result
/// is bit-identical to the pre-crash state.  Returns the replayed count.
fn replay_wal_records<K: ServerSemiring, M: MatrixStorage<Elem = K>>(
    state: &mut BackendState<K, M>,
    records: &[WalRecord],
    covered_seq: u64,
) -> Result<u64, ServerError> {
    let mut replayed = 0u64;
    for record in records {
        if record.seq <= covered_seq {
            continue;
        }
        let matrix = state.instance.matrix_mut(&record.var).ok_or_else(|| {
            ServerError::storage(format!("WAL names unknown variable `{}`", record.var))
        })?;
        for &(i, j, v) in &record.entries {
            let (Ok(i), Ok(j)) = (usize::try_from(i), usize::try_from(j)) else {
                return Err(ServerError::storage("WAL entry index overflows usize"));
            };
            matrix
                .set_entry(i, j, K::from_f64(v))
                .map_err(|e| ServerError::storage(format!("WAL replay: {e}")))?;
        }
        replayed += 1;
    }
    Ok(replayed)
}

/// Per-backend instance state: the MATLANG instance plus the prepared-query
/// plan, its persistent memo cache and the delta-maintenance bookkeeping.
pub struct BackendState<K: ServerSemiring, M: MatrixStorage<Elem = K>> {
    /// The MATLANG instance (dims + matrices).
    pub instance: Instance<K, M>,
    /// Prepared statements, indexed by query id.
    pub prepared: Vec<PreparedQuery>,
    /// One plan covering every prepared statement (root *i* ↔ query id
    /// *i*), shared through the store-wide plan cache.
    pub plan: Option<Arc<Plan>>,
    /// The persistent memo cache over `plan`'s nodes.
    pub cache: matlang_engine::NodeCache<M>,
    /// This semiring's pointwise-function registry.
    pub registry: FunctionRegistry<K>,
    /// Pending sparse delta overlays on top of `cache` (lazy patches from
    /// delta-maintained `UPDATE`s, folded into the bases before execution).
    pub overlay: DeltaOverlay<K>,
    /// Cumulative cached nodes patched by delta propagation.
    pub delta_patches: u64,
    /// Cumulative `UPDATE`s that fell back to invalidation.
    pub delta_fallbacks: u64,
    /// Execution truth harvested from every `EXEC` that computed
    /// something: actual per-node output shapes/nnz, consulted over the
    /// cost model's estimates at (re-)planning time.
    pub observed: ObservedStats,
    /// The statistics the active plan was built against — the baseline
    /// the drift check compares the current instance to.
    pub planned_stats: Option<InstanceStats>,
    /// Bumped on every drift-triggered re-plan; part of the plan-cache
    /// key, so stale pre-drift plan variants cannot be served again.
    pub stats_generation: u64,
    /// Cumulative drift-triggered re-plans (the `STATS` wire counter).
    pub replans: u64,
    /// Byte-level resource account (data, memo cache, overlays) plus
    /// execution/activity counters, refreshed at every mutation point.
    pub account: ResourceAccount,
    /// Durability state while the instance is persisted (open WAL + gauge
    /// bookkeeping); `None` for the in-memory-only default.
    pub(crate) persist: Option<Persistence>,
}

impl<K: ServerSemiring, M: MatrixStorage<Elem = K>> Default for BackendState<K, M> {
    fn default() -> Self {
        BackendState {
            instance: Instance::new(),
            prepared: Vec::new(),
            plan: None,
            cache: Vec::new(),
            registry: K::registry(),
            overlay: DeltaOverlay::new(0),
            delta_patches: 0,
            delta_fallbacks: 0,
            observed: ObservedStats::default(),
            planned_stats: None,
            stats_generation: 0,
            replans: 0,
            account: ResourceAccount::default(),
            persist: None,
        }
    }
}

impl<K: ServerSemiring, M: MatrixStorage<Elem = K>> BackendState<K, M> {
    /// Drops every cached node value and pending overlay (wholesale
    /// invalidation: rebinds, dimension changes).
    fn clear_cache(&mut self) {
        self.cache.iter_mut().for_each(|slot| *slot = None);
        self.overlay.reset(self.cache.len());
    }

    /// Recomputes the byte figures of the account from O(1) per-slot
    /// length reads: every variable's [`MatrixStorage::heap_bytes`], the
    /// memo cache's residency and the pending overlays.  Cost is
    /// O(variables + plan nodes) pointer reads — no payload is walked.
    fn account_refresh(&mut self) {
        self.account.data_bytes = self
            .instance
            .matrices()
            .map(|(_, matrix)| matrix.heap_bytes())
            .sum();
        let (entries, bytes) = matlang_engine::cache_residency(&self.cache);
        self.account.cache_entries = entries;
        self.account.cache_bytes = bytes;
        self.account.overlay_bytes = self.overlay.pending_bytes();
    }

    /// [`Self::account_refresh`] plus the activity stamp and a registry
    /// publish — the write-side hook every mutating verb runs under the
    /// instance lock.  Skipped entirely while observability is disabled,
    /// so the accounted hot path stays within the overhead guard budget.
    fn account_touch(&mut self, name: &str) {
        if !matlang_obs::enabled() {
            return;
        }
        self.account_refresh();
        self.account.last_active_us = matlang_obs::metrics::clock_us();
        publish_account(name, &mut self.account);
    }
}

/// A named instance: the same state machine over every supported
/// semiring × storage-backend combination.
pub enum ServerInstance {
    /// Dense row-major storage over ℝ.
    DenseReal(BackendState<Real, Matrix<Real>>),
    /// Adaptive (density-thresholded dense/CSR) storage over ℝ.
    AdaptiveReal(BackendState<Real, MatrixRepr<Real>>),
    /// Dense storage over the Boolean semiring.
    DenseBool(BackendState<Boolean, Matrix<Boolean>>),
    /// Adaptive storage over the Boolean semiring.
    AdaptiveBool(BackendState<Boolean, MatrixRepr<Boolean>>),
    /// Dense storage over ℕ.
    DenseNat(BackendState<Nat, Matrix<Nat>>),
    /// Adaptive storage over ℕ.
    AdaptiveNat(BackendState<Nat, MatrixRepr<Nat>>),
    /// Dense storage over the tropical min-plus semiring.
    DenseMinPlus(BackendState<MinPlus, Matrix<MinPlus>>),
    /// Adaptive storage over the tropical min-plus semiring.
    AdaptiveMinPlus(BackendState<MinPlus, MatrixRepr<MinPlus>>),
}

impl ServerInstance {
    fn create(adaptive: bool, semiring: SemiringKind) -> ServerInstance {
        match (adaptive, semiring) {
            (false, SemiringKind::Real) => ServerInstance::DenseReal(BackendState::default()),
            (true, SemiringKind::Real) => ServerInstance::AdaptiveReal(BackendState::default()),
            (false, SemiringKind::Boolean) => ServerInstance::DenseBool(BackendState::default()),
            (true, SemiringKind::Boolean) => ServerInstance::AdaptiveBool(BackendState::default()),
            (false, SemiringKind::Nat) => ServerInstance::DenseNat(BackendState::default()),
            (true, SemiringKind::Nat) => ServerInstance::AdaptiveNat(BackendState::default()),
            (false, SemiringKind::MinPlus) => ServerInstance::DenseMinPlus(BackendState::default()),
            (true, SemiringKind::MinPlus) => {
                ServerInstance::AdaptiveMinPlus(BackendState::default())
            }
        }
    }

    /// The backend name as used by the protocol.
    pub fn backend_name(&self) -> &'static str {
        match self {
            ServerInstance::DenseReal(_)
            | ServerInstance::DenseBool(_)
            | ServerInstance::DenseNat(_)
            | ServerInstance::DenseMinPlus(_) => "dense",
            ServerInstance::AdaptiveReal(_)
            | ServerInstance::AdaptiveBool(_)
            | ServerInstance::AdaptiveNat(_)
            | ServerInstance::AdaptiveMinPlus(_) => "adaptive",
        }
    }

    /// The semiring name as used by the protocol.
    pub fn semiring_name(&self) -> &'static str {
        match self {
            ServerInstance::DenseReal(_) | ServerInstance::AdaptiveReal(_) => Real::NAME,
            ServerInstance::DenseBool(_) | ServerInstance::AdaptiveBool(_) => Boolean::NAME,
            ServerInstance::DenseNat(_) | ServerInstance::AdaptiveNat(_) => Nat::NAME,
            ServerInstance::DenseMinPlus(_) | ServerInstance::AdaptiveMinPlus(_) => MinPlus::NAME,
        }
    }
}

/// Runs a closure against the semiring- and backend-generic state of a
/// [`ServerInstance`].
macro_rules! with_state {
    ($instance:expr, |$state:ident| $body:expr) => {
        match $instance {
            ServerInstance::DenseReal($state) => $body,
            ServerInstance::AdaptiveReal($state) => $body,
            ServerInstance::DenseBool($state) => $body,
            ServerInstance::AdaptiveBool($state) => $body,
            ServerInstance::DenseNat($state) => $body,
            ServerInstance::AdaptiveNat($state) => $body,
            ServerInstance::DenseMinPlus($state) => $body,
            ServerInstance::AdaptiveMinPlus($state) => $body,
        }
    };
}

/// The outcome of a `PREPARE`.
#[derive(Clone, Copy, Debug)]
pub struct PrepareOutcome {
    /// The query id to pass to `EXEC`.
    pub qid: usize,
    /// Whether this exact statement was already prepared on the instance.
    pub reused_statement: bool,
    /// Whether the plan came from the store-wide plan cache.
    pub reused_plan: bool,
    /// DAG node count of the (batch) plan.
    pub plan_nodes: usize,
    /// [`Plan::structure_fingerprint`] of the plan the statement will
    /// execute.  The cost-based rewrite layer means the *rewritten* DAG —
    /// not the query text — is what runs, and its shape depends on the
    /// instance statistics at planning time; this fingerprint identifies
    /// the variant (echoed on the wire as `fp=` so clients can tell two
    /// plan variants of the same text apart).
    pub plan_fingerprint: u64,
}

/// How an `UPDATE` maintained the prepared-plan memo cache.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaDisposition {
    /// The update was exact under the delta rules and was propagated
    /// through the DAG.
    Applied {
        /// Cached nodes whose overlay absorbed a non-empty delta.
        patched: u64,
    },
    /// The update could not be propagated exactly; dependent cache
    /// entries were invalidated instead.
    Fallback {
        /// Why the delta path was refused.
        reason: DeltaFallback,
    },
}

/// The outcome of an `UPDATE`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// Entries applied to the instance matrix.
    pub applied: usize,
    /// Cached plan nodes dropped (0 on a fully patched delta pass).
    pub invalidated: u64,
    /// Whether the cache was patched or invalidated, and why.
    pub delta: DeltaDisposition,
}

/// One row of a detailed `LIST` reply: the instance name, its backend and
/// semiring, and the cumulative delta-maintenance counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InstanceInfo {
    /// The instance name.
    pub name: String,
    /// Storage backend (`dense` / `adaptive`).
    pub backend: &'static str,
    /// Semiring wire name (`real` / `bool` / `nat` / `minplus`).
    pub semiring: &'static str,
    /// Cumulative cached nodes patched by delta propagation.
    pub delta_patches: u64,
    /// Cumulative `UPDATE`s that fell back to invalidation.
    pub delta_fallbacks: u64,
}

/// One instance's durability figures — the payload behind the `WALSTAT`
/// verb and the typed reply of [`crate::client::Client::walstat`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalStat {
    /// Whether the instance is currently persisted.
    pub persisted: bool,
    /// Newest WAL sequence number ever issued for the instance (survives
    /// compaction; 0 when nothing was ever logged).
    pub seq: u64,
    /// Records currently in the log (drops to 0 after compaction).
    pub records: u64,
    /// Bytes currently in the log.
    pub wal_bytes: u64,
    /// Size of the newest snapshot written this session, in bytes.
    pub snapshot_bytes: u64,
    /// The WAL size past which the next applied `UPDATE` compacts.
    pub compact_threshold: u64,
}

impl WalStat {
    /// The one-line wire rendering (`persist=on|off`, then the figures).
    pub fn render(&self) -> String {
        format!(
            "persist={} seq={} records={} wal_bytes={} snapshot_bytes={} compact={}",
            if self.persisted { "on" } else { "off" },
            self.seq,
            self.records,
            self.wal_bytes,
            self.snapshot_bytes,
            self.compact_threshold,
        )
    }
}

/// How many `(queries, schema)` plan variants the process-wide plan cache
/// retains before evicting the least-recently-used one.  Plans are small
/// next to instance data, but an unbounded cache would grow with every
/// distinct prepared batch a long-lived server ever sees (ROADMAP item).
pub const PLAN_CACHE_CAPACITY: usize = 64;

/// The plan-cache key: `(queries fingerprint, schema fingerprint, stats
/// generation)`.  The generation is 0 until the owning instance's drift
/// check re-plans, so same-schema instances still share plans; after a
/// re-plan the bumped generation retires every earlier variant for that
/// instance.
type PlanKey = (u64, u64, u64);

/// The fingerprint half of a [`PlanKey`] for one prepared batch.
fn plan_key(prepared: &[PreparedQuery], stats: &InstanceStats, generation: u64) -> PlanKey {
    let mut key_hasher = std::collections::hash_map::DefaultHasher::new();
    for p in prepared {
        p.fingerprint.hash(&mut key_hasher);
    }
    (key_hasher.finish(), stats.schema_fingerprint(), generation)
}

/// A minimal LRU map for shared plans: a `HashMap` plus a monotonically
/// increasing use-stamp per entry; inserting at capacity evicts the entry
/// with the smallest stamp.  Eviction scans the map — `O(capacity)` on
/// insert — which is the right trade at this size (64 entries) versus
/// carrying a linked order structure.
struct LruPlanCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<PlanKey, (Arc<Plan>, u64)>,
}

impl LruPlanCache {
    fn new(capacity: usize) -> Self {
        LruPlanCache {
            capacity: capacity.max(1),
            tick: 0,
            entries: HashMap::new(),
        }
    }

    /// Looks up a plan, refreshing its recency on a hit.
    fn get(&mut self, key: &PlanKey) -> Option<Arc<Plan>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|(plan, stamp)| {
            *stamp = tick;
            Arc::clone(plan)
        })
    }

    /// Inserts a plan, evicting the least-recently-used entry when the
    /// cache is full and the key is new.
    fn insert(&mut self, key: PlanKey, plan: Arc<Plan>) {
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(&oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(key, _)| key)
            {
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(key, (plan, self.tick));
        self.publish();
    }

    /// Evicts the least-recently-used entry outright (pressure
    /// shedding).  Returns whether anything was evicted.
    fn evict_coldest(&mut self) -> bool {
        let oldest = self
            .entries
            .iter()
            .min_by_key(|(_, (_, stamp))| *stamp)
            .map(|(key, _)| *key);
        match oldest {
            Some(key) => {
                self.entries.remove(&key);
                self.publish();
                true
            }
            None => false,
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total DAG nodes across the retained plans — the cache's weight
    /// figure (plans hold no matrix data, so nodes are the honest unit).
    fn weight_nodes(&self) -> usize {
        self.entries
            .values()
            .map(|(plan, _)| plan.nodes().len())
            .sum()
    }

    /// Refreshes the plan-cache gauges (entry count and node weight).
    /// O(entries) at ≤ [`PLAN_CACHE_CAPACITY`] entries, called only on
    /// content changes, never on lookups.
    fn publish(&self) {
        matlang_obs::gauge!("plan_cache_plans").set(self.len() as i64);
        matlang_obs::gauge!("plan_cache_weight_nodes").set(self.weight_nodes() as i64);
    }
}

/// The shared server state; see the module docs.
pub struct Store {
    instances: RwLock<HashMap<String, Arc<Mutex<ServerInstance>>>>,
    plan_cache: Mutex<LruPlanCache>,
    engine: Engine,
    data_dir: Option<PathBuf>,
    wal_compact: u64,
}

impl Default for Store {
    fn default() -> Self {
        Store::new()
    }
}

impl Store {
    /// An empty store from the environment-resolved [`StoreConfig`]
    /// defaults (persistence on only when `MATLANG_DATA_DIR` is set, in
    /// which case any snapshots found there are recovered).
    pub fn new() -> Store {
        Store::with_config(StoreConfig::default())
    }

    /// A store persisting under `dir`: every snapshot found there is
    /// recovered (newest valid snapshot + WAL suffix replay) and stays
    /// persisted, and `PERSIST <inst> on` is legal for new instances.
    pub fn open(dir: impl Into<PathBuf>) -> Store {
        Store::with_config(StoreConfig::builder().data_dir(dir).build())
    }

    /// A store from an explicit [`StoreConfig`].  Applies the process-wide
    /// budget/drift settings the builder recorded, then — when a data
    /// directory is configured — creates it and recovers every instance
    /// with a snapshot there.  A snapshot or WAL that fails integrity
    /// checks skips that one instance (with a `persist:recover-failed`
    /// trace event); recovery never panics.
    pub fn with_config(config: StoreConfig) -> Store {
        if let Some(budget) = config.mem_budget {
            set_mem_budget(budget);
        }
        if let Some(ratio) = config.replan_drift {
            set_replan_drift(ratio);
        }
        let store = Store {
            instances: RwLock::new(HashMap::new()),
            plan_cache: Mutex::new(LruPlanCache::new(config.plan_cache_capacity)),
            engine: Engine::new(),
            data_dir: config.data_dir,
            wal_compact: config.wal_compact.max(1),
        };
        store.recover_all();
        store
    }

    /// A store with an explicit plan-cache bound and no persistence.
    #[deprecated(
        note = "use StoreConfig::builder().plan_cache_capacity(..) with Store::with_config"
    )]
    pub fn with_plan_cache_capacity(capacity: usize) -> Store {
        Store::with_config(
            StoreConfig::builder()
                .plan_cache_capacity(capacity)
                .no_data_dir()
                .build(),
        )
    }

    /// The data directory this store persists under, if any.
    pub fn data_dir(&self) -> Option<&Path> {
        self.data_dir.as_deref()
    }

    /// Boot-time recovery: one attempt per snapshot found in the data
    /// directory.  Failures are contained per instance.
    fn recover_all(&self) {
        let Some(dir) = self.data_dir.clone() else {
            return;
        };
        if std::fs::create_dir_all(&dir).is_err() {
            matlang_obs::trace::event("persist:recover-failed");
            return;
        }
        for name in persist::scan_snapshots(&dir) {
            match self.recover_one(&dir, &name) {
                Ok(()) => {
                    matlang_obs::counter!("persist_recovered_total").inc();
                    matlang_obs::trace::event("persist:recover");
                }
                Err(_) => {
                    matlang_obs::trace::event("persist:recover-failed");
                }
            }
        }
    }

    /// Recovers one instance: decode its snapshot, rebuild the typed
    /// [`ServerInstance`], replay the WAL suffix (`seq > covered_seq`),
    /// and leave the instance persisted with its WAL re-opened.  A stale
    /// `.snap.tmp` from a crash mid-compaction is ignored — the rename in
    /// [`Snapshot::write_atomic`] guarantees `<name>.snap` is either the
    /// old or the new complete snapshot, never a torn one.
    fn recover_one(&self, dir: &Path, name: &str) -> Result<(), ServerError> {
        let snap_path = persist::snapshot_path(dir, name);
        let snap = Snapshot::read(&snap_path).map_err(|e| ServerError::storage(e.to_string()))?;
        let semiring = SemiringKind::parse(&snap.semiring).ok_or_else(|| {
            ServerError::storage(format!("unknown semiring tag `{}`", snap.semiring))
        })?;
        let adaptive = match snap.backend.as_str() {
            "adaptive" => true,
            "dense" => false,
            other => {
                return Err(ServerError::storage(format!(
                    "unknown backend tag `{other}`"
                )))
            }
        };
        let snapshot_bytes = std::fs::metadata(&snap_path).map(|m| m.len()).unwrap_or(0);
        let (wal, records) = Wal::open(&persist::wal_path(dir, name))
            .map_err(|e| ServerError::storage(e.to_string()))?;
        let mut instance = ServerInstance::create(adaptive, semiring);
        with_state!(&mut instance, |state| {
            populate_from_snapshot(state, &snap)?;
            replay_wal_records(state, &records, snap.covered_seq)?;
            let mut p = Persistence {
                wal,
                snapshot_bytes,
                published_wal_bytes: 0,
            };
            // After a compaction the log is empty, so the file's own
            // last_seq restarts at 0; the snapshot's covered sequence is
            // the instance's true high-water mark.
            p.wal.last_seq = p.wal.last_seq.max(snap.covered_seq);
            publish_wal_bytes(&mut p);
            state.persist = Some(p);
            state.account_touch(name);
            Ok::<(), ServerError>(())
        })?;
        self.instances
            .write()
            .expect("store poisoned")
            .insert(name.to_string(), Arc::new(Mutex::new(instance)));
        Ok(())
    }

    /// Number of plans currently retained by the process-wide plan cache.
    pub fn plan_cache_len(&self) -> usize {
        self.plan_cache.lock().expect("plan cache poisoned").len()
    }

    /// Writes a fresh snapshot covering everything logged so far and
    /// empties the WAL — compaction, and the durability hook for
    /// non-`UPDATE` mutations (rebinds, dim changes).  A no-op unless the
    /// instance is persisted.
    fn checkpoint_in<K: ServerSemiring, M: MatrixStorage<Elem = K> + MatrixCodec>(
        &self,
        state: &mut BackendState<K, M>,
        name: &str,
        backend: &'static str,
    ) -> Result<(), ServerError> {
        let covered_seq = match (&state.persist, self.data_dir.as_deref()) {
            (Some(p), Some(_)) => p.wal.last_seq,
            _ => return Ok(()),
        };
        let dir = self.data_dir.as_deref().expect("matched above");
        let snap = encode_snapshot(state, backend, covered_seq);
        let bytes = snap
            .write_atomic(&persist::snapshot_path(dir, name))
            .map_err(|e| ServerError::storage(e.to_string()))?;
        let p = state.persist.as_mut().expect("matched above");
        p.wal
            .truncate()
            .map_err(|e| ServerError::storage(e.to_string()))?;
        p.snapshot_bytes = bytes;
        publish_wal_bytes(p);
        matlang_obs::counter!("persist_snapshot_total").inc();
        matlang_obs::trace::event("persist:snapshot");
        Ok(())
    }

    /// Logs one applied `UPDATE` prefix to the instance's WAL (fsync'd),
    /// then compacts when the log has outgrown the configured threshold.
    /// A WAL write failure degrades the instance to non-persisted — the
    /// on-disk artifacts stay a *consistent older* state rather than a
    /// silently diverging one — and leaves a `persist:error` trace event.
    fn wal_append_in<K: ServerSemiring, M: MatrixStorage<Elem = K> + MatrixCodec>(
        &self,
        state: &mut BackendState<K, M>,
        name: &str,
        backend: &'static str,
        var: &str,
        applied: &[(usize, usize, f64)],
    ) {
        let Some(p) = state.persist.as_mut() else {
            return;
        };
        let record = WalRecord {
            seq: p.wal.last_seq + 1,
            var: var.to_string(),
            entries: applied
                .iter()
                .map(|&(i, j, v)| (i as u64, j as u64, v))
                .collect(),
        };
        match p.wal.append(&record) {
            Ok(_) => {
                matlang_obs::counter!("wal_records_total").inc();
                matlang_obs::trace::event("persist:append");
                publish_wal_bytes(p);
            }
            Err(_) => {
                retract_wal_bytes(p);
                state.persist = None;
                matlang_obs::trace::event("persist:error");
                return;
            }
        }
        if state.persist.as_ref().expect("append path").wal.bytes > self.wal_compact {
            matlang_obs::trace::event("persist:compact");
            // Best-effort: on failure the WAL still holds every record,
            // so durability is unharmed and the next append retries.
            let _ = self.checkpoint_in(state, name, backend);
        }
    }

    /// Turns durability on or off for an instance — the `PERSIST` verb.
    /// Enabling writes an initial snapshot and opens a fresh WAL (requires
    /// a configured data directory and a filesystem-safe name; idempotent
    /// when already on).  Disabling stops logging and removes the on-disk
    /// artifacts, retracting the instance's `wal_bytes` gauge share.
    /// Returns the resulting persisted flag.
    pub fn set_persist(&self, name: &str, on: bool) -> Result<bool, ServerError> {
        let instance = self.instance(name)?;
        let mut guard = instance.lock().expect("instance poisoned");
        let backend = guard.backend_name();
        with_state!(&mut *guard, |state| {
            if on {
                if state.persist.is_some() {
                    return Ok(true);
                }
                let dir = self.data_dir.as_deref().ok_or_else(|| {
                    ServerError::storage(
                        "no data directory configured (set MATLANG_DATA_DIR or StoreConfig data_dir)",
                    )
                })?;
                if !persist::filesystem_safe(name) {
                    return Err(ServerError::storage(format!(
                        "instance name `{name}` is not filesystem-safe"
                    )));
                }
                let (wal, _stale) = Wal::open(&persist::wal_path(dir, name))
                    .map_err(|e| ServerError::storage(e.to_string()))?;
                let mut p = Persistence {
                    wal,
                    snapshot_bytes: 0,
                    published_wal_bytes: 0,
                };
                // Whatever the log held belonged to an earlier, dropped
                // persistence session: this one starts at sequence 0 with
                // the initial snapshot as its base.
                p.wal
                    .truncate()
                    .map_err(|e| ServerError::storage(e.to_string()))?;
                p.wal.last_seq = 0;
                state.persist = Some(p);
                if let Err(e) = self.checkpoint_in(state, name, backend) {
                    state.persist = None;
                    return Err(e);
                }
                Ok(true)
            } else {
                if let Some(p) = state.persist.as_mut() {
                    retract_wal_bytes(p);
                }
                state.persist = None;
                if let Some(dir) = self.data_dir.as_deref() {
                    if persist::filesystem_safe(name) {
                        persist::remove_instance_files(dir, name)
                            .map_err(|e| ServerError::storage(e.to_string()))?;
                    }
                }
                Ok(false)
            }
        })
    }

    /// Writes a snapshot of an instance now — the `SAVE` verb.  With an
    /// explicit `path` the snapshot is exported there and the instance's
    /// live WAL (if any) is untouched; without one the snapshot goes to
    /// the data directory, and a persisted instance compacts its WAL into
    /// it.  Returns the byte size and the path written.
    pub fn save(&self, name: &str, path: Option<&Path>) -> Result<(u64, PathBuf), ServerError> {
        let instance = self.instance(name)?;
        let mut guard = instance.lock().expect("instance poisoned");
        let backend = guard.backend_name();
        with_state!(&mut *guard, |state| {
            let covered_seq = state.persist.as_ref().map_or(0, |p| p.wal.last_seq);
            match path {
                Some(path) => {
                    let snap = encode_snapshot(state, backend, covered_seq);
                    let bytes = snap
                        .write_atomic(path)
                        .map_err(|e| ServerError::storage(e.to_string()))?;
                    matlang_obs::counter!("persist_snapshot_total").inc();
                    matlang_obs::trace::event("persist:snapshot");
                    Ok((bytes, path.to_path_buf()))
                }
                None => {
                    let dir = self.data_dir.as_deref().ok_or_else(|| {
                        ServerError::storage(
                            "SAVE without a path needs a data directory (set MATLANG_DATA_DIR or StoreConfig data_dir)",
                        )
                    })?;
                    if !persist::filesystem_safe(name) {
                        return Err(ServerError::storage(format!(
                            "instance name `{name}` is not filesystem-safe"
                        )));
                    }
                    let target = persist::snapshot_path(dir, name);
                    if state.persist.is_some() {
                        self.checkpoint_in(state, name, backend)?;
                        let bytes = state.persist.as_ref().expect("persisted").snapshot_bytes;
                        Ok((bytes, target))
                    } else {
                        let snap = encode_snapshot(state, backend, covered_seq);
                        let bytes = snap
                            .write_atomic(&target)
                            .map_err(|e| ServerError::storage(e.to_string()))?;
                        matlang_obs::counter!("persist_snapshot_total").inc();
                        matlang_obs::trace::event("persist:snapshot");
                        Ok((bytes, target))
                    }
                }
            }
        })
    }

    /// Creates a new instance from a snapshot file — the `RESTORE` verb.
    /// The name must be free; the instance is *not* automatically
    /// persisted (use `PERSIST <inst> on`).  Returns the restored dim and
    /// variable counts.
    pub fn restore(&self, name: &str, path: &Path) -> Result<(usize, usize), ServerError> {
        let snap = Snapshot::read(path).map_err(|e| ServerError::storage(e.to_string()))?;
        let semiring = SemiringKind::parse(&snap.semiring).ok_or_else(|| {
            ServerError::storage(format!("unknown semiring tag `{}`", snap.semiring))
        })?;
        let adaptive = match snap.backend.as_str() {
            "adaptive" => true,
            "dense" => false,
            other => {
                return Err(ServerError::storage(format!(
                    "unknown backend tag `{other}`"
                )))
            }
        };
        let mut instance = ServerInstance::create(adaptive, semiring);
        with_state!(&mut instance, |state| {
            populate_from_snapshot(state, &snap)?;
            state.account_touch(name);
            Ok::<(), ServerError>(())
        })?;
        let mut instances = self.instances.write().expect("store poisoned");
        if instances.contains_key(name) {
            return Err(ServerError::InstanceExists {
                name: name.to_string(),
            });
        }
        instances.insert(name.to_string(), Arc::new(Mutex::new(instance)));
        matlang_obs::trace::event("persist:restore");
        Ok((snap.dims.len(), snap.vars.len()))
    }

    /// An instance's durability figures — the `WALSTAT` verb.
    pub fn walstat(&self, name: &str) -> Result<WalStat, ServerError> {
        let instance = self.instance(name)?;
        let guard = instance.lock().expect("instance poisoned");
        Ok(with_state!(&*guard, |state| match state.persist.as_ref() {
            Some(p) => WalStat {
                persisted: true,
                seq: p.wal.last_seq,
                records: p.wal.records,
                wal_bytes: p.wal.bytes,
                snapshot_bytes: p.snapshot_bytes,
                compact_threshold: self.wal_compact,
            },
            None => WalStat {
                persisted: false,
                seq: 0,
                records: 0,
                wal_bytes: 0,
                snapshot_bytes: 0,
                compact_threshold: self.wal_compact,
            },
        }))
    }

    /// Creates a named instance over ℝ.  Fails if the name is taken.
    pub fn create_instance(&self, name: &str, adaptive: bool) -> Result<(), ServerError> {
        self.create_instance_with(name, adaptive, SemiringKind::Real)
    }

    /// Creates a named instance over an explicit semiring.  Fails if the
    /// name is taken.
    pub fn create_instance_with(
        &self,
        name: &str,
        adaptive: bool,
        semiring: SemiringKind,
    ) -> Result<(), ServerError> {
        let mut instances = self.instances.write().expect("store poisoned");
        if instances.contains_key(name) {
            return Err(ServerError::InstanceExists {
                name: name.to_string(),
            });
        }
        instances.insert(
            name.to_string(),
            Arc::new(Mutex::new(ServerInstance::create(adaptive, semiring))),
        );
        Ok(())
    }

    /// Removes a named instance, with its prepared statements and cache,
    /// retiring its contribution to the resource-accounting gauges.  A
    /// persisted instance also loses its on-disk snapshot/WAL files and
    /// its `wal_bytes` gauge share — `DROP` must leave no orphaned state.
    pub fn drop_instance(&self, name: &str) -> Result<(), ServerError> {
        let removed = self
            .instances
            .write()
            .expect("store poisoned")
            .remove(name)
            .ok_or_else(|| ServerError::UnknownInstance {
                name: name.to_string(),
            })?;
        let mut guard = removed.lock().expect("instance poisoned");
        with_state!(&mut *guard, |state| {
            if let Some(p) = state.persist.as_mut() {
                retract_wal_bytes(p);
            }
            // Close the WAL handle before unlinking its file.
            state.persist = None;
            unpublish_account(name, &mut state.account)
        });
        if let Some(dir) = self.data_dir.as_deref() {
            if persist::filesystem_safe(name) {
                let _ = persist::remove_instance_files(dir, name);
            }
        }
        Ok(())
    }

    /// Instance names in sorted order.
    pub fn list_instances(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .instances
            .read()
            .expect("store poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Per-instance descriptions in name order: backend, semiring and the
    /// cumulative delta-maintenance counters (the `LIST` wire reply).
    pub fn list_detailed(&self) -> Vec<InstanceInfo> {
        let handles: Vec<(String, Arc<Mutex<ServerInstance>>)> = {
            let map = self.instances.read().expect("store poisoned");
            map.iter()
                .map(|(name, handle)| (name.clone(), Arc::clone(handle)))
                .collect()
        };
        let mut infos: Vec<InstanceInfo> = handles
            .into_iter()
            .map(|(name, handle)| {
                let guard = handle.lock().expect("instance poisoned");
                let (delta_patches, delta_fallbacks) = with_state!(&*guard, |state| (
                    state.delta_patches,
                    state.delta_fallbacks
                ));
                InstanceInfo {
                    name,
                    backend: guard.backend_name(),
                    semiring: guard.semiring_name(),
                    delta_patches,
                    delta_fallbacks,
                }
            })
            .collect();
        infos.sort_by(|a, b| a.name.cmp(&b.name));
        infos
    }

    fn instance(&self, name: &str) -> Result<Arc<Mutex<ServerInstance>>, ServerError> {
        self.instances
            .read()
            .expect("store poisoned")
            .get(name)
            .cloned()
            .ok_or_else(|| ServerError::UnknownInstance {
                name: name.to_string(),
            })
    }

    /// The `(backend, semiring)` names of a named instance.
    pub fn describe_instance(
        &self,
        name: &str,
    ) -> Result<(&'static str, &'static str), ServerError> {
        let instance = self.instance(name)?;
        let guard = instance.lock().expect("instance poisoned");
        Ok((guard.backend_name(), guard.semiring_name()))
    }

    /// Assigns a size symbol on an instance.
    pub fn set_dim(&self, name: &str, sym: &str, value: usize) -> Result<(), ServerError> {
        let instance = self.instance(name)?;
        let mut guard = instance.lock().expect("instance poisoned");
        let backend = guard.backend_name();
        with_state!(&mut *guard, |state| {
            state.instance.set_dim(sym, value);
            // Dimension symbols are not matrix variables, so they are
            // invisible to the plan's dependency index — a dim change
            // conservatively clears the whole memo cache (loop iteration
            // counts and canonical-vector sizes may all have changed).
            state.clear_cache();
            // A dim assignment is not an `UPDATE`, so it cannot ride the
            // WAL; a persisted instance checkpoints into a fresh snapshot
            // instead, keeping recovery exact.
            self.checkpoint_in(state, name, backend)?;
            state.account_touch(name);
            Ok(())
        })
    }

    /// Assigns a matrix from explicit `(row, col, value)` entries, with
    /// values injected through the instance semiring's `from_f64`.
    /// Returns the stored non-zero count.
    pub fn load_matrix(
        &self,
        name: &str,
        var: &str,
        rows: usize,
        cols: usize,
        entries: Vec<(usize, usize, f64)>,
    ) -> Result<usize, ServerError> {
        let triplets: Vec<(usize, usize, Real)> = entries
            .into_iter()
            .map(|(i, j, v)| (i, j, Real(v)))
            .collect();
        let sparse = SparseMatrix::from_triplets(rows, cols, triplets)
            .map_err(|e| ServerError::storage(e.to_string()))?;
        self.assign_matrix(name, var, sparse)
    }

    /// Generates a random graph matrix over the dimension named `sym`.
    /// Returns the stored non-zero count.
    pub fn generate_matrix(
        &self,
        name: &str,
        var: &str,
        sym: &str,
        kind: GenKind,
    ) -> Result<usize, ServerError> {
        let instance = self.instance(name)?;
        let n = {
            let guard = instance.lock().expect("instance poisoned");
            with_state!(&*guard, |state| state
                .instance
                .dim_value(&Dim::Sym(sym.to_string())))
        }
        .ok_or_else(|| {
            ServerError::storage(format!("size symbol `{sym}` has no assigned dimension"))
        })?;
        let sparse: SparseMatrix<Real> = match kind {
            GenKind::ErdosRenyi { avg_degree, seed } => sparse_erdos_renyi(n, avg_degree, seed),
            GenKind::PowerLaw {
                avg_degree,
                alpha,
                seed,
            } => sparse_power_law(n, avg_degree, alpha, seed),
        };
        self.assign_matrix(name, var, sparse)
    }

    /// Stores `matrix` under `var`, converting to the instance's semiring
    /// and backend.  Any (re)assignment resets the prepared plan's memo
    /// cache — unlike a point `UPDATE`, a wholesale rebind invalidates
    /// everything that mentions the variable, and conservatively clearing
    /// is cheapest.
    fn assign_matrix(
        &self,
        name: &str,
        var: &str,
        sparse: SparseMatrix<Real>,
    ) -> Result<usize, ServerError> {
        let instance = self.instance(name)?;
        let mut guard = instance.lock().expect("instance poisoned");
        let backend = guard.backend_name();
        let stored = with_state!(&mut *guard, |state| {
            let stored = assign_in(state, var, &sparse);
            if stored.is_ok() {
                // A wholesale rebind cannot be expressed as WAL entries;
                // a persisted instance checkpoints into a fresh snapshot.
                self.checkpoint_in(state, name, backend)?;
            }
            state.account_touch(name);
            stored
        });
        drop(guard);
        self.maybe_shed(name);
        stored
    }

    /// Parses, type-checks and plans a query against an instance,
    /// registering it as a prepared statement.  All of the instance's
    /// prepared statements are planned **as one batch** so they share a
    /// memo cache; the batch plan itself is shared through the store-wide
    /// `(queries, schema)`-keyed plan cache.
    pub fn prepare(&self, name: &str, text: &str) -> Result<PrepareOutcome, ServerError> {
        matlang_obs::counter!("prepare_total").inc();
        let expr = parse_traced(text)?;
        let instance = self.instance(name)?;
        let mut guard = instance.lock().expect("instance poisoned");
        with_state!(&mut *guard, |state| {
            let outcome = self.prepare_in(state, text, expr);
            state.account_touch(name);
            outcome
        })
    }

    fn prepare_in<K: ServerSemiring, M: MatrixStorage<Elem = K>>(
        &self,
        state: &mut BackendState<K, M>,
        text: &str,
        expr: Expr,
    ) -> Result<PrepareOutcome, ServerError> {
        let schema = derive_schema(&state.instance)?;
        typecheck(&expr, &schema).map_err(|e| ServerError::Type {
            message: e.to_string(),
        })?;
        let fingerprint = expr_fingerprint(&expr);
        if let Some(qid) = state
            .prepared
            .iter()
            .position(|p| p.fingerprint == fingerprint)
        {
            matlang_obs::counter!("plan_cache_hits_total").inc();
            return Ok(PrepareOutcome {
                qid,
                reused_statement: true,
                reused_plan: true,
                plan_nodes: state.plan.as_ref().map(|p| p.nodes().len()).unwrap_or(0),
                plan_fingerprint: state
                    .plan
                    .as_ref()
                    .map(|p| p.structure_fingerprint())
                    .unwrap_or(0),
            });
        }
        state.prepared.push(PreparedQuery {
            text: text.to_string(),
            expr,
            fingerprint,
        });
        let stats = InstanceStats::from_instance(&state.instance);
        let key = plan_key(&state.prepared, &stats, state.stats_generation);
        let mut reused_plan = true;
        let plan = {
            let mut plan_cache = self.plan_cache.lock().expect("plan cache poisoned");
            if let Some(plan) = plan_cache.get(&key) {
                matlang_obs::counter!("plan_cache_hits_total").inc();
                plan
            } else {
                reused_plan = false;
                matlang_obs::counter!("plan_cache_misses_total").inc();
                let queries: Vec<Expr> = state.prepared.iter().map(|p| p.expr.clone()).collect();
                let mut plan = self
                    .engine
                    .plan_with_stats::<K>(&queries, &stats, &state.observed);
                // Every node is memoized: a prepared query re-executed on
                // an unchanged instance is answered by one root-cache hit.
                plan.mark_all_cacheable();
                let plan = Arc::new(plan);
                plan_cache.insert(key, Arc::clone(&plan));
                plan
            }
        };
        // The plan's node ids changed; start the shared cache (and its
        // delta overlay) cold.
        state.cache = vec![None; plan.nodes().len()];
        state.overlay.reset(plan.nodes().len());
        state.plan = Some(Arc::clone(&plan));
        state.planned_stats = Some(stats);
        Ok(PrepareOutcome {
            qid: state.prepared.len() - 1,
            reused_statement: false,
            reused_plan,
            plan_nodes: plan.nodes().len(),
            plan_fingerprint: plan.structure_fingerprint(),
        })
    }

    /// Executes prepared queries through the instance's persistent memo
    /// cache, returning one wire result per query id.
    pub fn exec(&self, name: &str, qids: &[usize]) -> Result<Vec<WireResult>, ServerError> {
        let instance = self.instance(name)?;
        let mut guard = instance.lock().expect("instance poisoned");
        let outcome = with_state!(&mut *guard, |state| self.exec_in(state, name, qids));
        drop(guard);
        self.maybe_shed(name);
        outcome
    }

    /// Re-plans the instance's prepared batch when the current
    /// per-variable statistics have drifted past [`replan_drift`] from
    /// the snapshot the active plan was built against.  The new plan is
    /// built from fresh statistics plus the harvested [`ObservedStats`],
    /// cached under the bumped stats generation, and starts with a cold
    /// memo cache (node ids changed).
    fn maybe_replan<K: ServerSemiring, M: MatrixStorage<Elem = K>>(
        &self,
        state: &mut BackendState<K, M>,
    ) {
        let (Some(plan), Some(planned)) = (state.plan.as_ref(), state.planned_stats.as_ref())
        else {
            return;
        };
        let current = InstanceStats::from_instance(&state.instance);
        let mut worst = 1.0f64;
        for (var, cur) in &current.vars {
            // Only variables the plan actually reads can invalidate it.
            if plan.dependents_of(var).is_empty() {
                continue;
            }
            let old = planned.vars.get(var).map(|s| s.nnz).unwrap_or(0);
            let (hi, lo) = if cur.nnz >= old {
                (cur.nnz, old)
            } else {
                (old, cur.nnz)
            };
            worst = worst.max((hi as f64 + 1.0) / (lo as f64 + 1.0));
        }
        if worst <= replan_drift() {
            return;
        }
        matlang_obs::counter!("replan_total").inc();
        matlang_obs::trace::event("replan:drift");
        state.stats_generation += 1;
        state.replans += 1;
        let queries: Vec<Expr> = state.prepared.iter().map(|p| p.expr.clone()).collect();
        let mut plan = self
            .engine
            .plan_with_stats::<K>(&queries, &current, &state.observed);
        plan.mark_all_cacheable();
        let plan = Arc::new(plan);
        let key = plan_key(&state.prepared, &current, state.stats_generation);
        self.plan_cache
            .lock()
            .expect("plan cache poisoned")
            .insert(key, Arc::clone(&plan));
        state.cache = vec![None; plan.nodes().len()];
        state.overlay.reset(plan.nodes().len());
        state.plan = Some(plan);
        state.planned_stats = Some(current);
    }

    fn exec_in<K: ServerSemiring, M: MatrixStorage<Elem = K>>(
        &self,
        state: &mut BackendState<K, M>,
        name: &str,
        qids: &[usize],
    ) -> Result<Vec<WireResult>, ServerError> {
        if state.plan.is_none() {
            return Err(ServerError::NoPreparedQueries);
        }
        for &qid in qids {
            if qid >= state.prepared.len() {
                return Err(ServerError::UnknownQueryId { qid });
            }
        }
        // Feedback loop, closing half: when accumulated updates have
        // drifted the instance's density past the threshold, rebuild the
        // plan from current + observed statistics before executing.
        self.maybe_replan(state);
        let plan = state.plan.as_ref().expect("checked above");
        // Fold pending delta overlays into the cached bases the executor
        // will read (just the requested roots when they are all warm).
        let roots: Vec<usize> = qids.iter().map(|&qid| plan.roots()[qid]).collect();
        state.overlay.flush_for_roots(&mut state.cache, &roots);
        let cache = std::mem::take(&mut state.cache);
        let mut exec = Executor::with_cache(
            plan,
            &state.instance,
            &state.registry,
            self.engine.exec_options,
            cache,
        );
        let request_timer = matlang_obs::enabled().then(std::time::Instant::now);
        let mut results = Vec::with_capacity(qids.len());
        let mut outcome = Ok(());
        for &qid in qids {
            let before = exec.stats();
            matlang_obs::counter!("exec_total").inc();
            let timer = matlang_obs::enabled().then(std::time::Instant::now);
            let run = exec.run_shared(plan.roots()[qid]);
            if let Some(t) = timer {
                matlang_obs::histogram!("exec_latency_us").observe(t.elapsed().as_micros() as u64);
            }
            match run {
                Ok(value) => results.push(wire_result(
                    value.as_ref(),
                    exec.stats().since(&before),
                    plan.nodes().len(),
                    plan.structure_fingerprint(),
                    state.delta_patches,
                    state.delta_fallbacks,
                )),
                Err(e) => {
                    outcome = Err(ServerError::Eval {
                        message: e.to_string(),
                    });
                    break;
                }
            }
        }
        // Feedback loop, harvesting half: absorb what execution actually
        // produced.  A fully warm request computed nothing, so the absorb
        // (and its per-node fingerprinting) is skipped on the hot path.
        let misses = exec.stats().cache_misses;
        if misses > 0 {
            state.observed.absorb(plan, exec.observed_samples());
        }
        // Slow-query forensics: when this request crossed the slow
        // threshold, park the rewritten-DAG explain plus the per-node
        // observations for the session's trace guard to fold into the
        // slowlog entry when it drops.
        let spent_us = request_timer.map(|t| t.elapsed().as_micros() as u64);
        if let Some(elapsed_us) = spent_us {
            if elapsed_us >= matlang_obs::trace::slow_ms().saturating_mul(1_000) {
                let mut detail = plan.explain();
                for (id, sample) in exec.observed_samples().iter().enumerate() {
                    if sample.computed == 0 && sample.hits == 0 {
                        continue;
                    }
                    detail.push(format!(
                        "observed #{id} computed={} hits={} out={}x{} nnz={}",
                        sample.computed, sample.hits, sample.rows, sample.cols, sample.nnz
                    ));
                }
                matlang_obs::trace::attach_slow_detail(matlang_obs::trace::current_id(), detail);
            }
        }
        state.cache = exec.into_cache();
        // Resource accounting rides the same gate — and the same clock
        // read — as the slow-query check above.  A fully-warm EXEC (every
        // root a cache hit, no pending overlay folded in) cannot move any
        // byte figure, so the hot path pays only the activity stamp;
        // anything that computed (or absorbed an overlay) re-publishes.
        if let Some(elapsed_us) = spent_us {
            state.account.exec_count += qids.len() as u64;
            state.account.exec_time_us += elapsed_us;
            let warm = outcome.is_ok()
                && misses == 0
                && state.overlay.pending_bytes() == state.account.overlay_bytes;
            if warm {
                state.account.last_active_us = matlang_obs::metrics::clock_us();
            } else {
                state.account_touch(name);
            }
        }
        outcome.map(|_| results)
    }

    /// One-shot query: parse + typecheck + plan + evaluate, bypassing the
    /// prepared-statement machinery and its persistent cache entirely.
    /// This is the per-request-cost baseline `EXEC` is measured against.
    pub fn query(&self, name: &str, text: &str) -> Result<WireResult, ServerError> {
        matlang_obs::counter!("query_total").inc();
        let expr = parse_traced(text)?;
        let instance = self.instance(name)?;
        let mut guard = instance.lock().expect("instance poisoned");
        with_state!(&mut *guard, |state| self.query_in(state, &expr))
    }

    fn query_in<K: ServerSemiring, M: MatrixStorage<Elem = K>>(
        &self,
        state: &mut BackendState<K, M>,
        expr: &Expr,
    ) -> Result<WireResult, ServerError> {
        let schema = derive_schema(&state.instance)?;
        typecheck(expr, &schema).map_err(|e| ServerError::Type {
            message: e.to_string(),
        })?;
        let plan = self
            .engine
            .plan(std::slice::from_ref(expr), &state.instance);
        let mut exec = Executor::new(
            &plan,
            &state.instance,
            &state.registry,
            self.engine.exec_options,
        );
        let value = exec
            .run_shared(plan.roots()[0])
            .map_err(|e| ServerError::Eval {
                message: e.to_string(),
            })?;
        Ok(wire_result(
            value.as_ref(),
            exec.stats(),
            plan.nodes().len(),
            plan.structure_fingerprint(),
            0,
            0,
        ))
    }

    /// Applies in-place point updates to a matrix variable, then maintains
    /// the prepared-plan memo cache: exact **delta propagation** when the
    /// semiring and the batch allow it, dependency-scoped invalidation
    /// otherwise (see the module docs).  The [`UpdateOutcome`] reports
    /// which path ran and why.
    pub fn update(
        &self,
        name: &str,
        var: &str,
        entries: &[(usize, usize, f64)],
    ) -> Result<UpdateOutcome, ServerError> {
        matlang_obs::counter!("update_total").inc();
        let timer = matlang_obs::enabled().then(std::time::Instant::now);
        let instance = self.instance(name)?;
        let mut guard = instance.lock().expect("instance poisoned");
        let backend = guard.backend_name();
        let outcome = with_state!(&mut *guard, |state| {
            let mut applied = 0usize;
            let outcome = self.update_in(state, var, entries, &mut applied);
            // Log exactly the applied prefix — on a mid-batch failure the
            // entries before the failing one *did* mutate the matrix, and
            // recovery must replay them.
            if applied > 0 {
                self.wal_append_in(state, name, backend, var, &entries[..applied]);
            }
            state.account_touch(name);
            outcome
        });
        if let Some(t) = timer {
            matlang_obs::histogram!("update_latency_us").observe(t.elapsed().as_micros() as u64);
        }
        drop(guard);
        self.maybe_shed(name);
        outcome
    }

    fn update_in<K: ServerSemiring, M: MatrixStorage<Elem = K>>(
        &self,
        state: &mut BackendState<K, M>,
        var: &str,
        entries: &[(usize, usize, f64)],
        applied_out: &mut usize,
    ) -> Result<UpdateOutcome, ServerError> {
        let has_plan = state.plan.is_some();
        let matrix =
            state
                .instance
                .matrix_mut(var)
                .ok_or_else(|| ServerError::UnknownVariable {
                    var: var.to_string(),
                })?;
        // An empty batch mutates nothing and invalidates nothing: it is a
        // (trivially exact) delta application of the empty update, not a
        // fallback — and must not disturb the warm cache either way.
        if entries.is_empty() {
            return Ok(UpdateOutcome {
                applied: 0,
                invalidated: 0,
                delta: DeltaDisposition::Applied { patched: 0 },
            });
        }
        let (rows, cols) = matrix.shape();
        // Decide the path *before* mutating anything: the delta rules are
        // only exact for idempotent ⊕ and insert-only batches.
        let mut fallback = if !self.engine.plan_options.delta_maintenance {
            Some(DeltaFallback::Disabled)
        } else if !has_plan {
            Some(DeltaFallback::NoPlan)
        } else if !join_is_idempotent::<K>() {
            Some(DeltaFallback::NonIdempotentSemiring)
        } else {
            None
        };
        // The per-entry insert-only check, with in-batch duplicates
        // tracked through `staged` so `old` is always the value the entry
        // actually overwrites.
        let mut staged: HashMap<(usize, usize), K> = HashMap::new();
        if fallback.is_none() {
            for &(i, j, v) in entries {
                let new = K::from_f64(v);
                let old = match staged.get(&(i, j)) {
                    Some(prev) => prev.clone(),
                    None => match matrix.get_entry(i, j) {
                        Ok(old) => old,
                        // Out of bounds: the apply loop below fails at
                        // this same entry and the batch falls back.
                        Err(_) => break,
                    },
                };
                if !absorbs(&old, &new) {
                    fallback = Some(DeltaFallback::NotInsertOnly);
                    break;
                }
                staged.insert((i, j), new);
            }
        }
        let mut applied = 0usize;
        let mut failure = None;
        for &(i, j, v) in entries {
            if let Err(e) = matrix.set_entry(i, j, K::from_f64(v)) {
                failure = Some(ServerError::storage(e.to_string()));
                break;
            }
            applied += 1;
            *applied_out = applied;
        }
        if failure.is_some() {
            // The prefix before the failing entry *did* mutate the
            // matrix; a half-applied batch never takes the delta path.
            fallback = Some(DeltaFallback::PartialBatch);
        }
        let (invalidated, disposition) = match fallback {
            None => {
                // Every entry applied and absorbs: propagate the final
                // staged values (zero-valued entries are no-ops — an
                // absorbing write over a zero was itself zero — and are
                // stripped from the delta).
                let plan = state.plan.as_ref().expect("delta path implies a plan");
                let triplets: Vec<(usize, usize, K)> = staged
                    .into_iter()
                    .filter(|(_, v)| !v.is_zero())
                    .map(|((i, j), v)| (i, j, v))
                    .collect();
                let update = SparseMatrix::from_triplets(rows, cols, triplets)
                    .expect("update entries were bounds-checked by set_entry");
                let report = propagate(plan, &mut state.cache, &mut state.overlay, var, &update);
                state.delta_patches += report.patched;
                matlang_obs::counter!("delta_applied_total").inc();
                (
                    report.invalidated,
                    DeltaDisposition::Applied {
                        patched: report.patched,
                    },
                )
            }
            Some(reason) => {
                // Invalidate even when a later entry of the batch failed:
                // the entries before it *did* mutate the matrix, and a
                // cache that outlives them would serve stale results.
                state.delta_fallbacks += 1;
                matlang_obs::counter!("delta_fallback_total").inc();
                let invalidated = if applied > 0 {
                    match state.plan.as_ref() {
                        Some(plan) => {
                            for &id in plan.dependents_of(var) {
                                state.overlay.clear_node(id);
                            }
                            plan.invalidate_dependents_in(&mut state.cache, var)
                        }
                        None => 0,
                    }
                } else {
                    0
                };
                (invalidated, DeltaDisposition::Fallback { reason })
            }
        };
        match failure {
            Some(e) => Err(e),
            None => Ok(UpdateOutcome {
                applied,
                invalidated,
                delta: disposition,
            }),
        }
    }

    /// Plans a query against an instance **without executing it** and
    /// renders the rewritten DAG: one line per plan node with the cost
    /// model's size/work estimates and the cache/delta eligibility, plus
    /// the applied rewrites (the `EXPLAIN` wire block).
    pub fn explain(&self, name: &str, text: &str) -> Result<Vec<String>, ServerError> {
        let expr = parse_traced(text)?;
        let instance = self.instance(name)?;
        let guard = instance.lock().expect("instance poisoned");
        let backend = guard.backend_name();
        let semiring = guard.semiring_name();
        with_state!(&*guard, |state| {
            let schema = derive_schema(&state.instance)?;
            typecheck(&expr, &schema).map_err(|e| ServerError::Type {
                message: e.to_string(),
            })?;
            let plan = self
                .engine
                .plan(std::slice::from_ref(&expr), &state.instance);
            let mut lines = vec![format!(
                "instance {name} backend={backend} semiring={semiring}"
            )];
            lines.extend(plan.explain());
            Ok(lines)
        })
    }

    /// Plans **and executes** a query once with per-node profiling, then
    /// renders one line per plan node with its inclusive wall time, output
    /// shape/nnz and compute/hit counts (the `PROFILE` wire block).  Like
    /// `QUERY`, this bypasses the prepared-statement cache entirely.
    pub fn profile(&self, name: &str, text: &str) -> Result<Vec<String>, ServerError> {
        let expr = parse_traced(text)?;
        let instance = self.instance(name)?;
        let mut guard = instance.lock().expect("instance poisoned");
        let backend = guard.backend_name();
        let semiring = guard.semiring_name();
        with_state!(&mut *guard, |state| {
            let schema = derive_schema(&state.instance)?;
            typecheck(&expr, &schema).map_err(|e| ServerError::Type {
                message: e.to_string(),
            })?;
            let plan = self
                .engine
                .plan(std::slice::from_ref(&expr), &state.instance);
            let mut options = self.engine.exec_options;
            options.profile = true;
            let timer = std::time::Instant::now();
            let mut exec = Executor::new(&plan, &state.instance, &state.registry, options);
            exec.run_shared(plan.roots()[0])
                .map_err(|e| ServerError::Eval {
                    message: e.to_string(),
                })?;
            let total_us = timer.elapsed().as_micros() as u64;
            let samples = exec
                .profile_samples()
                .expect("profiling was requested")
                .to_vec();
            let stats = exec.stats();
            let mut lines = vec![format!(
                "instance {name} backend={backend} semiring={semiring} total_us={total_us}"
            )];
            for (id, sample) in samples.iter().enumerate() {
                lines.push(format!(
                    "#{id} {desc} | {us}us computed={computed} hits={hits} out={rows}x{cols} nnz={nnz}",
                    desc = plan.node(id).op.describe(),
                    us = sample.total_ns / 1_000,
                    computed = sample.computed,
                    hits = sample.hits,
                    rows = sample.rows,
                    cols = sample.cols,
                    nnz = sample.nnz,
                ));
            }
            lines.push(format!(
                "totals nodes={} computed={} hits={} fused={}",
                plan.nodes().len(),
                stats.cache_misses,
                stats.cache_hits,
                stats.fused_products,
            ));
            Ok(lines)
        })
    }

    /// Reports an instance's observed-vs-planned statistics — the `STATS`
    /// wire block.  One header line with the re-plan counters and the
    /// worst current drift, then one line per instance variable comparing
    /// the nnz the active plan was built against (`planned_nnz`), the
    /// instance's current nnz, and the last *executed* observation
    /// (`observed_nnz`, `-` before the variable is first computed), and a
    /// final line counting interior-node observations.
    pub fn stats(&self, name: &str) -> Result<Vec<String>, ServerError> {
        let instance = self.instance(name)?;
        let guard = instance.lock().expect("instance poisoned");
        let backend = guard.backend_name();
        let semiring = guard.semiring_name();
        with_state!(&*guard, |state| {
            let current = InstanceStats::from_instance(&state.instance);
            let referenced = |var: &str| {
                state
                    .plan
                    .as_ref()
                    .is_some_and(|p| !p.dependents_of(var).is_empty())
            };
            let mut worst = 1.0f64;
            let mut var_lines = Vec::with_capacity(current.vars.len());
            for (var, cur) in &current.vars {
                let planned = state
                    .planned_stats
                    .as_ref()
                    .and_then(|s| s.vars.get(var))
                    .map(|s| s.nnz);
                let old = planned.unwrap_or(0);
                let (hi, lo) = if cur.nnz >= old {
                    (cur.nnz, old)
                } else {
                    (old, cur.nnz)
                };
                let drift = (hi as f64 + 1.0) / (lo as f64 + 1.0);
                let is_referenced = referenced(var);
                if is_referenced {
                    worst = worst.max(drift);
                }
                var_lines.push(format!(
                    "var {var} shape={}x{} planned_nnz={} current_nnz={} observed_nnz={} drift={drift:.2} referenced={}",
                    cur.rows,
                    cur.cols,
                    planned.map_or_else(|| "-".to_string(), |n| n.to_string()),
                    cur.nnz,
                    state
                        .observed
                        .vars
                        .get(var)
                        .map_or_else(|| "-".to_string(), |s| s.nnz.to_string()),
                    if is_referenced { "yes" } else { "no" },
                ));
            }
            let mut lines = vec![format!(
                "instance {name} backend={backend} semiring={semiring} generation={} replans={} executions={} drift={worst:.2} threshold={:.2}",
                state.stats_generation,
                state.replans,
                state.observed.executions,
                replan_drift(),
            )];
            lines.append(&mut var_lines);
            lines.push(format!("observed nodes={}", state.observed.nodes.len()));
            Ok(lines)
        })
    }

    /// Capacity snapshot — the `HEALTH` wire verb.  Byte figures are
    /// recomputed authoritatively from each instance's account (O(1)
    /// per-slot reads under the instance lock), so the report is truthful
    /// even while observability recording is disabled.
    pub fn health(&self) -> HealthReport {
        let handles: Vec<Arc<Mutex<ServerInstance>>> = {
            let map = self.instances.read().expect("store poisoned");
            map.values().cloned().collect()
        };
        let instances = handles.len();
        let mut total_bytes = 0u64;
        for handle in handles {
            let mut guard = handle.lock().expect("instance poisoned");
            total_bytes += with_state!(&mut *guard, |state| {
                state.account_refresh();
                state.account.total_bytes() as u64
            });
        }
        let budget = mem_budget();
        let status = match budget {
            Some(b) if total_bytes > b => "pressure",
            _ => "ok",
        };
        HealthReport {
            status,
            total_bytes,
            budget,
            instances,
            connections: matlang_obs::gauge!("connections_active").get(),
            exec_total: matlang_obs::counter!("exec_total").get(),
            slow_total: matlang_obs::counter!("slow_queries_total").get(),
            fallback_total: matlang_obs::counter!("delta_fallback_total").get(),
            update_total: matlang_obs::counter!("update_total").get(),
            pressure_evictions: matlang_obs::counter!("pressure_evictions_total").get(),
        }
    }

    /// Instances ranked by accounted bytes (ties: exec time, then name)
    /// — the `TOP` wire block.  One line per instance with the byte
    /// breakdown, memo-cache residency, execution totals and per-root
    /// cache residency (first 8 roots; `-` marks a cold root).
    pub fn top(&self, n: Option<usize>) -> Vec<String> {
        const ROOT_COLUMNS: usize = 8;
        let handles: Vec<(String, Arc<Mutex<ServerInstance>>)> = {
            let map = self.instances.read().expect("store poisoned");
            map.iter()
                .map(|(name, handle)| (name.clone(), Arc::clone(handle)))
                .collect()
        };
        let mut rows = Vec::with_capacity(handles.len());
        for (name, handle) in handles {
            let mut guard = handle.lock().expect("instance poisoned");
            let backend = guard.backend_name();
            let semiring = guard.semiring_name();
            let (account, roots) = with_state!(&mut *guard, |state| {
                state.account_refresh();
                let mut roots = Vec::new();
                if let Some(plan) = state.plan.as_ref() {
                    for (qid, &root) in plan.roots().iter().enumerate().take(ROOT_COLUMNS) {
                        let resident = state
                            .cache
                            .get(root)
                            .and_then(|slot| slot.as_ref())
                            .map(|value| value.heap_bytes());
                        roots.push(match resident {
                            Some(bytes) => format!("q{qid}:{bytes}"),
                            None => format!("q{qid}:-"),
                        });
                    }
                    if plan.roots().len() > ROOT_COLUMNS {
                        roots.push(format!("(+{})", plan.roots().len() - ROOT_COLUMNS));
                    }
                }
                (state.account, roots)
            });
            rows.push((name, backend, semiring, account, roots));
        }
        rows.sort_by(|a, b| {
            b.3.total_bytes()
                .cmp(&a.3.total_bytes())
                .then(b.3.exec_time_us.cmp(&a.3.exec_time_us))
                .then(a.0.cmp(&b.0))
        });
        if let Some(n) = n {
            rows.truncate(n);
        }
        rows.into_iter()
            .map(|(name, backend, semiring, account, roots)| {
                format!(
                    "instance={name} backend={backend} semiring={semiring} bytes={} data={} \
                     cache_bytes={} cache_entries={} overlay={} execs={} exec_us={} roots={}",
                    account.total_bytes(),
                    account.data_bytes,
                    account.cache_bytes,
                    account.cache_entries,
                    account.overlay_bytes,
                    account.exec_count,
                    account.exec_time_us,
                    if roots.is_empty() {
                        "-".to_string()
                    } else {
                        roots.join(",")
                    },
                )
            })
            .collect()
    }

    /// Sheds memory after a mutating request when the aggregate accounted
    /// bytes exceed the soft budget ([`mem_budget`]): first the cold half
    /// of the plan cache (plans are pure derived state), then the memo
    /// caches and overlays of idle instances — coldest `last_active_us`
    /// first — skipping `just_used` and anything currently locked
    /// (`try_lock`: shedding must never contend with or deadlock against
    /// a session holding an instance).  Primary matrix data is never
    /// shed.  Every eviction bumps `pressure_evictions_total` and leaves
    /// a trace event.
    fn maybe_shed(&self, just_used: &str) {
        if !matlang_obs::enabled() {
            return;
        }
        let Some(budget) = mem_budget() else {
            return;
        };
        let over = || matlang_obs::gauge!("instance_bytes").get() > budget as i64;
        if !over() {
            return;
        }
        matlang_obs::trace::event("pressure:shed");
        {
            let mut plans = self.plan_cache.lock().expect("plan cache poisoned");
            let keep = plans.capacity() / 2;
            while plans.len() > keep && plans.evict_coldest() {
                matlang_obs::counter!("pressure_evictions_total").inc();
                matlang_obs::trace::event("pressure:evict-plan");
            }
        }
        let snapshot: Vec<(String, Arc<Mutex<ServerInstance>>)> = {
            let map = self.instances.read().expect("store poisoned");
            map.iter()
                .filter(|(name, _)| name.as_str() != just_used)
                .map(|(name, handle)| (name.clone(), Arc::clone(handle)))
                .collect()
        };
        let mut candidates: Vec<(u64, String, Arc<Mutex<ServerInstance>>)> = Vec::new();
        for (name, handle) in snapshot {
            let idle = match handle.try_lock() {
                Ok(guard) => with_state!(&*guard, |state| {
                    let resident = state.account.cache_bytes + state.account.overlay_bytes;
                    (resident > 0).then_some(state.account.last_active_us)
                }),
                Err(_) => None,
            };
            if let Some(last_active) = idle {
                candidates.push((last_active, name, handle));
            }
        }
        candidates.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        for (_, name, handle) in candidates {
            if !over() {
                break;
            }
            let Ok(mut guard) = handle.try_lock() else {
                continue;
            };
            with_state!(&mut *guard, |state| {
                state.clear_cache();
                state.account_touch(&name);
            });
            matlang_obs::counter!("pressure_evictions_total").inc();
            matlang_obs::trace::event("pressure:evict-cache");
        }
    }
}

/// One-line readiness snapshot — the payload behind the `HEALTH` verb.
#[derive(Clone, Debug)]
pub struct HealthReport {
    /// `ok`, or `pressure` when the accounted bytes exceed the budget.
    pub status: &'static str,
    /// Accounted bytes across every instance (data + caches + overlays).
    pub total_bytes: u64,
    /// The soft budget ([`mem_budget`]), if one is configured.
    pub budget: Option<u64>,
    /// Instances hosted.
    pub instances: usize,
    /// Live client connections (the `connections_active` gauge).
    pub connections: i64,
    /// Cumulative `EXEC` statements, process-wide.
    pub exec_total: u64,
    /// Cumulative queries past the slow threshold.
    pub slow_total: u64,
    /// Cumulative delta-maintenance fallbacks.
    pub fallback_total: u64,
    /// Cumulative `UPDATE` statements.
    pub update_total: u64,
    /// Cumulative pressure evictions (plans + memo caches).
    pub pressure_evictions: u64,
}

impl HealthReport {
    /// Slow queries per executed statement (0 when nothing ran).
    pub fn slow_rate(&self) -> f64 {
        if self.exec_total == 0 {
            0.0
        } else {
            self.slow_total as f64 / self.exec_total as f64
        }
    }

    /// Delta fallbacks per `UPDATE` (0 when none ran).
    pub fn fallback_rate(&self) -> f64 {
        if self.update_total == 0 {
            0.0
        } else {
            self.fallback_total as f64 / self.update_total as f64
        }
    }

    /// The one-line wire rendering (`-` for "no budget configured").
    pub fn render(&self) -> String {
        format!(
            "status={} bytes={} budget={} instances={} connections={} exec={} \
             slow_rate={:.4} fallback_rate={:.4} evictions={}",
            self.status,
            self.total_bytes,
            self.budget
                .map_or_else(|| "-".to_string(), |b| b.to_string()),
            self.instances,
            self.connections,
            self.exec_total,
            self.slow_rate(),
            self.fallback_rate(),
            self.pressure_evictions,
        )
    }
}

/// Parses query text under a `parse` trace span, mapping errors to the
/// wire error kind.
fn parse_traced(text: &str) -> Result<Expr, ServerError> {
    let _span = matlang_obs::trace::active().then(|| matlang_obs::trace::span("parse"));
    parse(text).map_err(|e| ServerError::Parse {
        message: e.to_string(),
    })
}

/// Converts loaded/generated ℝ triplet data into the instance's semiring
/// and backend and stores it, clearing the memo cache.  Returns the stored
/// non-zero count.
fn assign_in<K: ServerSemiring, M: MatrixStorage<Elem = K>>(
    state: &mut BackendState<K, M>,
    var: &str,
    sparse: &SparseMatrix<Real>,
) -> Result<usize, ServerError> {
    let triplets: Vec<(usize, usize, K)> = sparse
        .iter_entries()
        .map(|(i, j, v)| (i, j, K::from_f64(v.0)))
        .collect();
    let converted = SparseMatrix::from_triplets(sparse.rows(), sparse.cols(), triplets)
        .map_err(|e| ServerError::storage(e.to_string()))?;
    let nnz = converted.nnz();
    state.instance.set_matrix(var, M::from_sparse(converted));
    state.clear_cache();
    Ok(nnz)
}

/// Derives the typing schema of an instance: every matrix variable is
/// typed by matching its concrete shape against the instance's size-symbol
/// assignments (dimension 1 is the distinguished symbol `1`; other values
/// resolve to the first size symbol carrying them, in name order).
fn derive_schema<K: Semiring, M: MatrixStorage<Elem = K>>(
    instance: &Instance<K, M>,
) -> Result<Schema, ServerError> {
    let dim_for = |value: usize| -> Result<Dim, ServerError> {
        if value == 1 {
            return Ok(Dim::One);
        }
        instance
            .dims()
            .find(|&(_, n)| n == value)
            .map(|(sym, _)| Dim::sym(sym.clone()))
            .ok_or_else(|| {
                ServerError::storage(format!(
                    "no size symbol assigned the value {value} (use DIM)"
                ))
            })
    };
    let mut schema = Schema::new();
    for (var, matrix) in instance.matrices() {
        let (rows, cols) = matrix.shape();
        schema.declare(var.clone(), MatrixType::new(dim_for(rows)?, dim_for(cols)?));
    }
    Ok(schema)
}

fn wire_result<M: MatrixStorage>(
    value: &M,
    stats: matlang_engine::ExecStats,
    plan_nodes: usize,
    fingerprint: u64,
    delta_patches: u64,
    delta_fallbacks: u64,
) -> WireResult {
    let mut wire_stats = ExecStatsWire::from(stats);
    wire_stats.delta_patches = delta_patches;
    wire_stats.delta_fallbacks = delta_fallbacks;
    WireResult {
        rows: value.rows(),
        cols: value.cols(),
        entries: value
            .nonzero_entries()
            .into_iter()
            .map(|(i, j, v)| (i, j, v.to_f64()))
            .collect(),
        stats: wire_stats,
        plan_nodes,
        fingerprint,
        trace: matlang_obs::trace::current_id(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matlang_core::evaluate;

    #[test]
    fn nan_sentinel_matches_f64_nan() {
        assert_eq!(NAN_BITS, f64::NAN.to_bits());
        assert!(f64::from_bits(NAN_BITS).is_nan());
    }

    #[test]
    fn mem_budget_parser_accepts_binary_suffixes() {
        assert_eq!(parse_mem_budget("1048576"), Some(1 << 20));
        assert_eq!(parse_mem_budget("512k"), Some(512 << 10));
        assert_eq!(parse_mem_budget("64M"), Some(64 << 20));
        assert_eq!(parse_mem_budget("2g"), Some(2u64 << 30));
        assert_eq!(parse_mem_budget(" 8K "), Some(8 << 10));
        // Zero, empty, negative and non-numeric inputs mean "no budget".
        assert_eq!(parse_mem_budget("0"), None);
        assert_eq!(parse_mem_budget(""), None);
        assert_eq!(parse_mem_budget("k"), None);
        assert_eq!(parse_mem_budget("-4"), None);
        assert_eq!(parse_mem_budget("nope"), None);
    }

    fn seeded_store() -> Store {
        let store = Store::new();
        store.create_instance("g", true).unwrap();
        store.set_dim("g", "n", 4).unwrap();
        store
            .load_matrix(
                "g",
                "G",
                4,
                4,
                vec![(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (3, 0, 4.0)],
            )
            .unwrap();
        store
    }

    #[test]
    fn instance_lifecycle() {
        let store = seeded_store();
        assert_eq!(store.list_instances(), vec!["g".to_string()]);
        assert!(matches!(
            store.create_instance("g", false),
            Err(ServerError::InstanceExists { .. })
        ));
        store.create_instance("h", false).unwrap();
        assert_eq!(store.list_instances().len(), 2);
        assert_eq!(store.describe_instance("h").unwrap(), ("dense", "real"));
        store.drop_instance("h").unwrap();
        assert!(matches!(
            store.drop_instance("h"),
            Err(ServerError::UnknownInstance { .. })
        ));
        assert!(matches!(
            store.prepare("missing", "G"),
            Err(ServerError::UnknownInstance { .. })
        ));
        store
            .create_instance_with("w", true, SemiringKind::MinPlus)
            .unwrap();
        assert_eq!(
            store.describe_instance("w").unwrap(),
            ("adaptive", "minplus")
        );
    }

    #[test]
    fn prepare_exec_matches_local_evaluation() {
        let store = seeded_store();
        let expr = Expr::var("G").t().mm(Expr::var("G"));
        let out = store.prepare("g", &expr.to_string()).unwrap();
        assert!(!out.reused_statement);
        let results = store.exec("g", &[out.qid]).unwrap();
        let local: Instance<Real> = Instance::new().with_dim("n", 4).with_matrix(
            "G",
            Matrix::from_f64_rows(&[
                &[0.0, 1.0, 0.0, 0.0],
                &[0.0, 0.0, 2.0, 0.0],
                &[0.0, 0.0, 0.0, 3.0],
                &[4.0, 0.0, 0.0, 0.0],
            ])
            .unwrap(),
        );
        let expected = evaluate(&expr, &local, &FunctionRegistry::standard_field()).unwrap();
        let got = dense_of(&results[0]);
        assert_eq!(got, expected);
        // Re-executing is answered by the warm cache: one root hit.
        let again = store.exec("g", &[out.qid]).unwrap();
        assert_eq!(again[0].stats.cache_misses, 0);
        assert_eq!(again[0].stats.cache_hits, 1);
        // Re-preparing the same text reuses the statement and the cache.
        let re = store.prepare("g", &expr.to_string()).unwrap();
        assert!(re.reused_statement);
        assert_eq!(re.qid, out.qid);
        let third = store.exec("g", &[out.qid]).unwrap();
        assert_eq!(third[0].stats.cache_misses, 0);
    }

    #[test]
    fn update_invalidates_only_dependents() {
        let store = seeded_store();
        store
            .load_matrix("g", "H", 4, 4, vec![(0, 0, 1.0), (1, 1, 1.0)])
            .unwrap();
        let over_g = store.prepare("g", "(transpose(G) * G)").unwrap();
        let over_h = store.prepare("g", "(H + H)").unwrap();
        // Warm both caches.
        store.exec("g", &[over_g.qid, over_h.qid]).unwrap();
        let outcome = store.update("g", "H", &[(2, 2, 5.0)]).unwrap();
        assert_eq!(outcome.applied, 1);
        assert!(outcome.invalidated >= 2, "Var(H) and H+H must drop");
        // ℝ has no idempotent ⊕: the delta path must refuse and say why.
        assert_eq!(
            outcome.delta,
            DeltaDisposition::Fallback {
                reason: DeltaFallback::NonIdempotentSemiring
            }
        );
        // The G query is untouched: answered fully from cache.
        let g_again = store.exec("g", &[over_g.qid]).unwrap();
        assert_eq!(g_again[0].stats.cache_misses, 0);
        // The H query recomputes and sees the new entry.
        let h_again = store.exec("g", &[over_h.qid]).unwrap();
        assert!(h_again[0].stats.cache_misses > 0);
        assert!(h_again[0]
            .entries
            .iter()
            .any(|&(i, j, v)| (i, j, v) == (2, 2, 10.0)));
        assert_eq!(h_again[0].stats.delta_fallbacks, 1, "fallback is counted");
        // Updating an unknown variable or out-of-bounds entry fails.
        assert!(matches!(
            store.update("g", "missing", &[(0, 0, 1.0)]),
            Err(ServerError::UnknownVariable { .. })
        ));
        assert!(store.update("g", "H", &[(9, 9, 1.0)]).is_err());
    }

    #[test]
    fn boolean_inserts_take_the_delta_path() {
        let store = Store::new();
        store
            .create_instance_with("b", true, SemiringKind::Boolean)
            .unwrap();
        store.set_dim("b", "n", 6).unwrap();
        store
            .load_matrix("b", "G", 6, 6, vec![(0, 1, 1.0), (1, 2, 1.0)])
            .unwrap();
        let qid = store.prepare("b", "(G * G)").unwrap().qid;
        store.exec("b", &[qid]).unwrap(); // warm
        let outcome = store.update("b", "G", &[(2, 3, 1.0)]).unwrap();
        assert!(
            matches!(outcome.delta, DeltaDisposition::Applied { patched } if patched > 0),
            "Boolean edge insert must be patched, got {:?}",
            outcome.delta
        );
        assert_eq!(outcome.invalidated, 0);
        let warm = store.exec("b", &[qid]).unwrap();
        assert_eq!(
            warm[0].stats.cache_misses, 0,
            "delta-maintained root must answer from cache"
        );
        assert!(warm[0].stats.delta_patches > 0);
        // Bit-identical to a cold recompute over the updated matrix.
        store
            .create_instance_with("cold", true, SemiringKind::Boolean)
            .unwrap();
        store.set_dim("cold", "n", 6).unwrap();
        store
            .load_matrix(
                "cold",
                "G",
                6,
                6,
                vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)],
            )
            .unwrap();
        let cold = store.query("cold", "(G * G)").unwrap();
        assert_eq!(warm[0].entries, cold.entries, "delta path diverged");
        // Deleting an edge has no semiring inverse: fallback.
        let outcome = store.update("b", "G", &[(0, 1, 0.0)]).unwrap();
        assert_eq!(
            outcome.delta,
            DeltaDisposition::Fallback {
                reason: DeltaFallback::NotInsertOnly
            }
        );
        assert!(outcome.invalidated > 0);
    }

    #[test]
    fn minplus_lowering_patches_and_raising_falls_back() {
        let store = Store::new();
        store
            .create_instance_with("w", false, SemiringKind::MinPlus)
            .unwrap();
        store.set_dim("w", "n", 4).unwrap();
        store
            .load_matrix("w", "G", 4, 4, vec![(0, 1, 5.0), (1, 2, 7.0)])
            .unwrap();
        let qid = store.prepare("w", "(G * G)").unwrap().qid;
        store.exec("w", &[qid]).unwrap(); // warm
                                          // Lowering a weight absorbs under min — patched.
        let lowered = store.update("w", "G", &[(0, 1, 2.0)]).unwrap();
        assert!(matches!(lowered.delta, DeltaDisposition::Applied { .. }));
        let warm = store.exec("w", &[qid]).unwrap();
        assert_eq!(warm[0].stats.cache_misses, 0);
        // The shortest 0→2 two-hop path now costs 2 + 7 = 9.
        assert!(warm[0].entries.contains(&(0, 2, 9.0)));
        // Raising it back does not absorb — fallback.
        let raised = store.update("w", "G", &[(0, 1, 6.0)]).unwrap();
        assert_eq!(
            raised.delta,
            DeltaDisposition::Fallback {
                reason: DeltaFallback::NotInsertOnly
            }
        );
        let recomputed = store.exec("w", &[qid]).unwrap();
        assert!(recomputed[0].stats.cache_misses > 0);
        assert!(recomputed[0].entries.contains(&(0, 2, 13.0)));
    }

    #[test]
    fn failed_update_batch_still_invalidates_applied_entries() {
        let store = seeded_store();
        store
            .load_matrix("g", "H", 4, 4, vec![(0, 0, 1.0)])
            .unwrap();
        let qid = store.prepare("g", "(H + H)").unwrap().qid;
        store.exec("g", &[qid]).unwrap(); // warm
                                          // First entry applies, second is out of bounds: the batch errors,
                                          // but the applied mutation must not leave a stale cache behind.
        assert!(store.update("g", "H", &[(0, 0, 7.0), (9, 9, 1.0)]).is_err());
        let result = store.exec("g", &[qid]).unwrap();
        assert!(
            result[0].stats.cache_misses > 0,
            "cache must drop after a partially-applied UPDATE"
        );
        assert!(result[0]
            .entries
            .iter()
            .any(|&(i, j, v)| (i, j, v) == (0, 0, 14.0)));
    }

    #[test]
    fn dim_changes_clear_the_memo_cache() {
        let store = seeded_store();
        // Σv:n. vᵀ·v counts the iterations — its value IS the dimension.
        let qid = store
            .prepare("g", "(sum v:n . (transpose(v) * v))")
            .unwrap()
            .qid;
        let four = store.exec("g", &[qid]).unwrap();
        assert_eq!(four[0].entries, vec![(0, 0, 4.0)]);
        store.set_dim("g", "n", 8).unwrap();
        let eight = store.exec("g", &[qid]).unwrap();
        assert_eq!(
            eight[0].entries,
            vec![(0, 0, 8.0)],
            "a DIM change must not serve results cached under the old value"
        );
    }

    #[test]
    fn plans_are_shared_across_same_shape_instances() {
        let store = seeded_store();
        store.create_instance("h", true).unwrap();
        store.set_dim("h", "n", 4).unwrap();
        store
            .load_matrix("h", "G", 4, 4, vec![(0, 0, 7.0)])
            .unwrap();
        let first = store.prepare("g", "(G * G)").unwrap();
        assert!(!first.reused_plan);
        let second = store.prepare("h", "(G * G)").unwrap();
        assert!(second.reused_plan, "same queries + same schema → same plan");
        // Different shape → different plan cache key.
        store.create_instance("k", true).unwrap();
        store.set_dim("k", "n", 5).unwrap();
        store
            .load_matrix("k", "G", 5, 5, vec![(0, 0, 7.0)])
            .unwrap();
        let third = store.prepare("k", "(G * G)").unwrap();
        assert!(!third.reused_plan);
    }

    #[test]
    fn plan_cache_evicts_in_lru_order() {
        // Capacity 2, three distinct plan keys; a `get` must refresh
        // recency so the *untouched* entry is the one evicted.
        let store = Store::with_config(StoreConfig::builder().plan_cache_capacity(2).build());
        let seed = |name: &str| {
            store.create_instance(name, true).unwrap();
            store.set_dim(name, "n", 4).unwrap();
            store
                .load_matrix(name, "G", 4, 4, vec![(0, 1, 1.0), (2, 3, 2.0)])
                .unwrap();
        };
        for name in ["a", "b", "c", "d", "e", "f"] {
            seed(name);
        }
        assert!(!store.prepare("a", "(G * G)").unwrap().reused_plan); // insert k1
        assert!(!store.prepare("b", "(G + G)").unwrap().reused_plan); // insert k2
        assert_eq!(store.plan_cache_len(), 2);
        assert!(store.prepare("c", "(G * G)").unwrap().reused_plan); // touch k1
        assert!(!store.prepare("d", "transpose(G)").unwrap().reused_plan); // k3 evicts k2
        assert_eq!(store.plan_cache_len(), 2);
        assert!(
            store.prepare("f", "(G * G)").unwrap().reused_plan,
            "k1 was refreshed by the earlier hit and must have survived the eviction"
        );
        assert!(
            !store.prepare("e", "(G + G)").unwrap().reused_plan,
            "k2 was least recently used and must have been evicted"
        );
    }

    #[test]
    fn prepare_reports_the_rewritten_plan_fingerprint() {
        let store = seeded_store();
        let out = store.prepare("g", "(transpose(G) * G)").unwrap();
        assert_ne!(out.plan_fingerprint, 0);
        // Re-preparing the same text reports the same plan variant.
        let again = store.prepare("g", "(transpose(G) * G)").unwrap();
        assert!(again.reused_statement);
        assert_eq!(again.plan_fingerprint, out.plan_fingerprint);
        // Preparing another statement replaces the batch plan: new DAG,
        // new fingerprint.
        let extended = store.prepare("g", "(G + G)").unwrap();
        assert_ne!(extended.plan_fingerprint, out.plan_fingerprint);
        // EXEC echoes the fingerprint of the plan that served the result.
        let served = store.exec("g", &[extended.qid]).unwrap();
        assert_eq!(served[0].fingerprint, extended.plan_fingerprint);
    }

    #[test]
    fn diag_products_run_on_the_fused_kernels() {
        let store = seeded_store();
        store
            .load_matrix("g", "u", 4, 1, vec![(0, 0, 2.0), (2, 0, 3.0)])
            .unwrap();
        let qid = store.prepare("g", "(diag(u) * G)").unwrap().qid;
        let results = store.exec("g", &[qid]).unwrap();
        assert_eq!(results[0].stats.fused_products, 1);
        // diag([2,0,3,0]) · G scales row 0 by 2 and row 2 by 3 of the
        // 4-cycle matrix (0→1 weight 1, 2→3 weight 3).
        assert!(results[0].entries.contains(&(0, 1, 2.0)));
        assert!(results[0].entries.contains(&(2, 3, 9.0)));
        assert_eq!(results[0].entries.len(), 2);
    }

    #[test]
    fn query_is_stateless_and_prepare_rejects_bad_queries() {
        let store = seeded_store();
        let result = store.query("g", "(G + G)").unwrap();
        assert_eq!(result.rows, 4);
        assert!(matches!(
            store.prepare("g", "(G +"),
            Err(ServerError::Parse { .. })
        ));
        assert!(matches!(
            store.prepare("g", "missingvar"),
            Err(ServerError::Type { .. })
        ));
        assert!(
            store.prepare("g", "(G . G)").is_err(),
            "lexical garbage is rejected"
        );
        assert!(store.query("g", "(const 1) )").is_err());
    }

    #[test]
    fn generated_matrices_are_usable() {
        let store = Store::new();
        store.create_instance("r", false).unwrap();
        store.set_dim("r", "n", 32).unwrap();
        let nnz = store
            .generate_matrix(
                "r",
                "G",
                "n",
                GenKind::ErdosRenyi {
                    avg_degree: 3.0,
                    seed: 7,
                },
            )
            .unwrap();
        assert!(nnz > 0);
        let out = store
            .prepare("r", "(transpose(ones(G)) * (G * ones(G)))")
            .unwrap();
        let results = store.exec("r", &[out.qid]).unwrap();
        assert_eq!((results[0].rows, results[0].cols), (1, 1));
        assert!(store
            .generate_matrix(
                "r",
                "G",
                "m",
                GenKind::ErdosRenyi {
                    avg_degree: 1.0,
                    seed: 1
                }
            )
            .is_err());
    }

    #[test]
    fn drift_past_threshold_triggers_a_transparent_replan() {
        // Plan against a nearly-empty G, then fill it: the nnz ratio
        // (64+1)/(4+1) = 13 crosses the default 4× drift threshold, so the
        // next EXEC must transparently re-plan — and stay bit-identical
        // to a local evaluation over the updated instance.
        let store = Store::new();
        store.create_instance("g", true).unwrap();
        store.set_dim("g", "n", 8).unwrap();
        store
            .load_matrix(
                "g",
                "G",
                8,
                8,
                vec![(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (3, 0, 4.0)],
            )
            .unwrap();
        let expr = Expr::var("G").mm(Expr::var("G"));
        let qid = store.prepare("g", &expr.to_string()).unwrap().qid;
        store.exec("g", &[qid]).unwrap();

        let mut entries = Vec::new();
        let mut dense = Matrix::zeros(8, 8);
        for i in 0..8 {
            for j in 0..8 {
                let v = (i + j + 1) as f64;
                entries.push((i, j, v));
                dense.set(i, j, Real(v)).unwrap();
            }
        }
        store.update("g", "G", &entries).unwrap();
        let results = store.exec("g", &[qid]).unwrap();

        let stats = store.stats("g").unwrap();
        assert!(
            stats[0].contains("generation=1") && stats[0].contains("replans=1"),
            "the drifted EXEC must have re-planned: {}",
            stats[0]
        );
        let local: Instance<Real> = Instance::new().with_dim("n", 8).with_matrix("G", dense);
        let expected = evaluate(&expr, &local, &FunctionRegistry::standard_field()).unwrap();
        assert_eq!(dense_of(&results[0]), expected, "re-plan changed results");
        // Steady state: no further drift, no further re-plans, warm cache.
        let again = store.exec("g", &[qid]).unwrap();
        assert_eq!(again[0].stats.cache_misses, 0);
        let stats = store.stats("g").unwrap();
        assert!(
            stats[0].contains("replans=1"),
            "spurious re-plan: {}",
            stats[0]
        );
    }

    #[test]
    fn stats_reports_planned_current_and_observed() {
        let store = seeded_store();
        let qid = store.prepare("g", "(transpose(G) * G)").unwrap().qid;
        store.exec("g", &[qid]).unwrap();
        let lines = store.stats("g").unwrap();
        assert!(
            lines[0].starts_with(
                "instance g backend=adaptive semiring=real generation=0 replans=0 executions=1"
            ),
            "header: {}",
            lines[0]
        );
        assert!(lines[0].contains("threshold="), "header: {}", lines[0]);
        let g_line = lines
            .iter()
            .find(|l| l.starts_with("var G "))
            .unwrap_or_else(|| panic!("no var line for G in {lines:?}"));
        assert!(
            g_line.contains("shape=4x4")
                && g_line.contains("planned_nnz=4")
                && g_line.contains("current_nnz=4")
                && g_line.contains("observed_nnz=4")
                && g_line.contains("referenced=yes"),
            "var line: {g_line}"
        );
        let footer = lines.last().unwrap();
        let nodes: usize = footer
            .strip_prefix("observed nodes=")
            .and_then(|n| n.parse().ok())
            .unwrap_or_else(|| panic!("footer: {footer}"));
        assert!(nodes > 0, "the executed DAG must leave node observations");
        assert!(matches!(
            store.stats("missing"),
            Err(ServerError::UnknownInstance { .. })
        ));
    }

    /// Rebuilds the dense matrix a [`WireResult`] denotes.
    pub fn dense_of(result: &WireResult) -> Matrix<Real> {
        let mut m = Matrix::zeros(result.rows, result.cols);
        for &(i, j, v) in &result.entries {
            m.set(i, j, Real(v)).unwrap();
        }
        m
    }
}
