//! `matlang_server` — a concurrent MATLANG query service with incremental
//! instance updates.
//!
//! The paper frames MATLANG as a *query language* over matrix instances;
//! everything below `matlang_engine` evaluates one expression in one
//! process.  This crate is the missing service layer: a long-lived,
//! in-memory server that holds **named instances**, lets clients
//! **prepare** queries once and execute them many times against a
//! **persistent memo cache**, and accepts **incremental updates** that
//! invalidate exactly the cached plan nodes depending on the touched
//! variable — so standing analytics queries over a mutating graph only
//! recompute the dirty subgraph of their plan DAG.
//!
//! Built entirely on `std` (the environment is offline): a hand-rolled
//! line-delimited text protocol over [`std::net::TcpListener`]
//! ([`protocol`]), an accept loop feeding a bounded connection queue with
//! backpressure ([`worker`]), and `MATLANG_THREADS`-aware worker threads
//! each serving one session at a time ([`session`]).  Heavy kernels inside
//! a query additionally fan out on the reusable
//! [`matlang_matrix::WorkerPool`].
//!
//! Results over the wire are **bit-identical** to [`matlang_core::evaluate`]
//! on both storage backends — values use shortest-round-trip `f64`
//! formatting, and the engine executing the plans is already pinned
//! bit-identical to the tree evaluator.  The `server_integration` suite
//! enforces this over the shared evaluator corpus.
//!
//! Instances over an **idempotent semiring** (`bool`, `minplus`) get exact
//! **delta-driven view maintenance**: an insert-only `UPDATE` is propagated
//! through the prepared plan DAG ([`matlang_engine::delta`]) instead of
//! invalidating it, so standing queries stay warm across updates.  Every
//! `UPDATE` reply says which path ran (`delta=applied patched=…` or
//! `delta=fallback reason=…`).
//!
//! ```
//! use matlang_server::{Client, DeltaWire, SemiringKind, Server, ServerConfig};
//!
//! let handle = Server::spawn(ServerConfig::default()).unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! assert!(client.hello().unwrap().has_capability("delta"));
//! client.create_instance_with("g", true, SemiringKind::Boolean).unwrap();
//! client.set_dim("g", "n", 3).unwrap();
//! client.load("g", "G", 3, 3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
//! let qid = client.prepare("g", "(G * G)").unwrap();
//! let two_hop = client.exec("g", qid).unwrap();
//! assert_eq!(two_hop.entries, vec![(0, 2, 1.0)]);
//! // Add the edge 2→0 and re-run: the Boolean insert is delta-propagated,
//! // so the standing query answers from the patched cache.
//! let reply = client.update("g", "G", &[(2, 0, 1.0)]).unwrap();
//! assert!(matches!(reply.delta, DeltaWire::Applied { .. }));
//! assert_eq!(client.exec("g", qid).unwrap().entries.len(), 3);
//! handle.shutdown();
//! ```

pub mod client;
pub mod error;
pub mod persist;
pub mod protocol;
pub mod session;
pub mod store;
pub mod worker;

pub use client::{
    parse_metrics_map, Client, ClientError, DeltaWire, ErrorCode, InstanceEntry, ServerHello,
    SlowlogEntry, UpdateReply,
};
pub use error::ServerError;
pub use protocol::{
    ExecStatsWire, GenKind, Request, ResponseHeader, SemiringKind, WireResult, CAPABILITIES,
    PROTOCOL_VERSION,
};
pub use session::SessionStats;
pub use store::{
    mem_budget, replan_drift, set_mem_budget, set_replan_drift, DeltaDisposition, HealthReport,
    InstanceInfo, PrepareOutcome, ResourceAccount, ServerSemiring, Store, StoreConfig,
    StoreConfigBuilder, UpdateOutcome, WalStat, DEFAULT_REPLAN_DRIFT, DEFAULT_WAL_COMPACT,
    PLAN_CACHE_CAPACITY,
};
pub use worker::ConnQueue;

use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A point-in-time view of one live session's accounting (see
/// [`SessionStats`]), readable without touching the session's socket.
#[derive(Clone, Debug)]
pub struct SessionSnapshot {
    /// Registry id of the session (monotonic per server).
    pub id: u64,
    /// Requests served, including ones answered with `ERR`.
    pub requests: u64,
    /// Bytes written back to the client.
    pub bytes_out: u64,
    /// Cumulative statement-execution wall time, microseconds.
    pub exec_time_us: u64,
}

/// Clones of the sockets of live sessions plus their accounting, so
/// shutdown can force-close them (a worker parked in a blocking `read`
/// on an idle client would otherwise never observe the stop signal and
/// the join would hang) and introspection can read per-session figures.
/// The `connections_active` gauge tracks the registry's size.
#[derive(Default)]
struct SessionRegistry {
    next_id: AtomicU64,
    streams: Mutex<HashMap<u64, (TcpStream, Arc<session::SessionStats>)>>,
}

impl SessionRegistry {
    fn register(&self, stream: &TcpStream) -> Option<(u64, Arc<session::SessionStats>)> {
        let clone = stream.try_clone().ok()?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let stats = Arc::new(session::SessionStats::default());
        let mut streams = self.streams.lock().expect("registry poisoned");
        streams.insert(id, (clone, Arc::clone(&stats)));
        matlang_obs::gauge!("connections_active").set(streams.len() as i64);
        Some((id, stats))
    }

    fn unregister(&self, id: u64) {
        let mut streams = self.streams.lock().expect("registry poisoned");
        streams.remove(&id);
        matlang_obs::gauge!("connections_active").set(streams.len() as i64);
    }

    fn shutdown_all(&self) {
        for (stream, _) in self.streams.lock().expect("registry poisoned").values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    fn snapshot(&self) -> Vec<SessionSnapshot> {
        let mut sessions: Vec<SessionSnapshot> = self
            .streams
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(&id, (_, stats))| SessionSnapshot {
                id,
                requests: stats.requests.load(Ordering::Relaxed),
                bytes_out: stats.bytes_out.load(Ordering::Relaxed),
                exec_time_us: stats.exec_time_us.load(Ordering::Relaxed),
            })
            .collect();
        sessions.sort_by_key(|s| s.id);
        sessions
    }
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; the default requests an ephemeral localhost port.
    pub addr: String,
    /// Session worker threads; `0` means [`matlang_matrix::configured_threads`]
    /// (the `MATLANG_THREADS` environment variable or the machine's
    /// available parallelism).
    pub workers: usize,
    /// Capacity of the accepted-connection queue; a full queue blocks the
    /// accept loop (backpressure).
    pub queue_capacity: usize,
    /// Store configuration (plan-cache capacity, data directory, WAL
    /// compaction threshold); the default honours `MATLANG_DATA_DIR` and
    /// `MATLANG_WAL_COMPACT`.
    pub store: StoreConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            queue_capacity: 64,
            store: StoreConfig::default(),
        }
    }
}

/// The server entry point; see [`Server::spawn`].
pub struct Server;

impl Server {
    /// Binds, spawns the accept loop and the worker pool, and returns a
    /// handle owning them.  The server runs until
    /// [`ServerHandle::shutdown`] (or drop).
    pub fn spawn(config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let workers = if config.workers == 0 {
            matlang_matrix::configured_threads()
        } else {
            config.workers
        };
        let store = Arc::new(Store::with_config(config.store.clone()));
        let queue = Arc::new(ConnQueue::new(config.queue_capacity));
        let stop = Arc::new(AtomicBool::new(false));
        let sessions = Arc::new(SessionRegistry::default());

        let mut worker_handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let store = Arc::clone(&store);
            let queue = Arc::clone(&queue);
            let sessions = Arc::clone(&sessions);
            let stop = Arc::clone(&stop);
            worker_handles.push(
                std::thread::Builder::new()
                    .name("matlang-server-worker".into())
                    .spawn(move || {
                        while let Some(connection) = queue.pop() {
                            // Registering makes the socket reachable by
                            // `shutdown_all`; a connection that cannot be
                            // registered (fd exhaustion) is dropped rather
                            // than served beyond shutdown's reach, and the
                            // stop flag is re-checked so a connection
                            // popped during shutdown is not served past
                            // the stop signal.
                            let Some((id, stats)) = sessions.register(&connection) else {
                                continue;
                            };
                            if !stop.load(Ordering::Acquire) {
                                // A session I/O failure or panic only ends
                                // that session, never the worker.
                                let _ =
                                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                        session::serve_connection(&store, connection, stats)
                                    }));
                            }
                            sessions.unregister(id);
                        }
                    })?,
            );
        }

        let accept_handle = {
            let queue = Arc::clone(&queue);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("matlang-server-accept".into())
                .spawn(move || {
                    for connection in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        match connection {
                            Ok(connection) => {
                                if !queue.push(connection) {
                                    break;
                                }
                            }
                            Err(_) => {
                                if stop.load(Ordering::Acquire) {
                                    break;
                                }
                            }
                        }
                    }
                })?
        };

        Ok(ServerHandle {
            addr,
            store,
            queue,
            stop,
            sessions,
            accept: Some(accept_handle),
            workers: worker_handles,
        })
    }
}

/// Owns a running server's threads; shuts the server down on
/// [`ServerHandle::shutdown`] or drop.
pub struct ServerHandle {
    addr: SocketAddr,
    store: Arc<Store>,
    queue: Arc<ConnQueue>,
    stop: Arc<AtomicBool>,
    sessions: Arc<SessionRegistry>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the concrete ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Direct access to the shared store — handy for in-process embedding
    /// alongside network clients.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Accounting snapshots of the live sessions, in registration order.
    pub fn sessions(&self) -> Vec<SessionSnapshot> {
        self.sessions.snapshot()
    }

    /// Stops accepting, drops not-yet-served queued connections,
    /// force-closes live session sockets, and joins every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock a blocking `accept` by poking one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.queue.close();
        self.sessions.shutdown_all();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop_and_join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_serve_shutdown() {
        let handle = Server::spawn(ServerConfig {
            workers: 2,
            queue_capacity: 4,
            ..ServerConfig::default()
        })
        .unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        client.ping().unwrap();
        assert_eq!(client.list().unwrap(), Vec::<String>::new());
        client.create_instance("t", false).unwrap();
        assert_eq!(client.list().unwrap(), vec!["t".to_string()]);
        client.quit().unwrap();
        handle.shutdown();
    }

    #[test]
    fn unknown_commands_get_err_without_closing_the_session() {
        let handle = Server::spawn(ServerConfig::default()).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        assert!(client.exec("nope", 0).is_err());
        // The session is still alive afterwards.
        client.ping().unwrap();
        handle.shutdown();
    }
}
