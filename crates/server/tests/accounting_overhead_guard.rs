//! Release-mode guard: resource accounting must be ~free on the hot path.
//!
//! Every mutating or executing request refreshes the instance's
//! [`matlang_server::ResourceAccount`] — summing `heap_bytes` over its
//! variables, reading memo-cache residency, stamping last-active — and
//! publishes the deltas as gauges.  All of that rides the same
//! [`matlang_obs::set_enabled`] gate as tracing, so toggling it compares
//! the full instrumented request (obs + accounting) against the bare one.
//! Unlike the obs guard, this instance is deliberately account-heavy:
//! several variables and a multi-node warm plan, so the per-request
//! refresh walk is as wide as realistic sessions make it.  Interleaved
//! best-of-three pair rounds with a median ratio pin the overhead at
//! ≤5 % in release mode.
//!
//! This file holds exactly one test: it toggles the process-wide enable
//! flag, which must not race sibling tests in the same binary.

use matlang_server::{Client, Server, ServerConfig};
use std::time::{Duration, Instant};

#[test]
fn timing_guard_accounting_overhead_on_warm_exec_is_within_five_percent() {
    // Debug builds measure the unoptimized instrumentation; keep the
    // guard meaningful but only pin the hard 5 % bound in release.
    let (pairs, iters, margin) = if cfg!(debug_assertions) {
        (6, 150, 1.5)
    } else {
        (12, 1_000, 1.05)
    };

    let handle = Server::spawn(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.create_instance("g", true).unwrap();
    client.set_dim("g", "n", 64).unwrap();
    // Four variables: the per-request account refresh sums heap bytes
    // over every variable, so the walk is wider than the obs guard's.
    for (var, seed) in [("G", 7), ("H", 11), ("K", 13), ("L", 17)] {
        client.gen_erdos_renyi("g", var, "n", 4.0, seed).unwrap();
    }
    // A scalar result keeps serialization out of the measurement; the
    // warm root hit keeps computation out of it.  What remains is the
    // wire round trip plus the per-request session/dispatch/accounting
    // work the instrumentation rides on.
    let qid = client
        .prepare("g", "(transpose(ones(G)) * ((G + H) * ones(K)))")
        .unwrap();
    client.exec("g", qid).unwrap(); // warm the cache

    let mut run_round = |enabled: bool| -> Duration {
        matlang_obs::set_enabled(enabled);
        let started = Instant::now();
        for _ in 0..iters {
            let result = client.exec("g", qid).unwrap();
            debug_assert_eq!(result.stats.cache_misses, 0, "EXEC must stay warm");
        }
        started.elapsed()
    };

    // Warm-up round on each side (socket buffers, branch predictors).
    run_round(true);
    run_round(false);
    // Machine load on a shared runner drifts at second scale and only
    // ever *adds* time, so the minimum over a few closely-spaced rounds
    // is the best estimate of a side's uncontaminated cost.  Each pair
    // interleaves three rounds per side (ABABAB, alternating which side
    // leads to cancel intra-pair drift), compares the two minima as one
    // ratio, and the median pair ratio is pinned.
    const BEST_OF: usize = 3;
    let mut ratios = Vec::with_capacity(pairs);
    for pair in 0..pairs {
        let mut best = [Duration::MAX; 2]; // [on, off]
        for rep in 0..2 * BEST_OF {
            let on = (pair + rep) % 2 == 0;
            let t = run_round(on);
            let slot = &mut best[usize::from(!on)];
            *slot = (*slot).min(t);
        }
        ratios.push(best[0].as_secs_f64() / best[1].as_secs_f64());
    }
    matlang_obs::set_enabled(true);

    ratios.sort_by(|a, b| a.total_cmp(b));
    let ratio = ratios[pairs / 2];
    eprintln!(
        "warm EXEC ×{iters}, {pairs} pairs (best-of-{BEST_OF} per side): \
         median on/off ratio {ratio:.4} (min {:.4}, max {:.4})",
        ratios[0],
        ratios[pairs - 1]
    );
    assert!(
        ratio <= margin,
        "accounting instrumentation costs {:.1}% on warm EXEC (budget {:.0}%)",
        (ratio - 1.0) * 100.0,
        (margin - 1.0) * 100.0,
    );
}
