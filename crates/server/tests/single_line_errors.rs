//! Pins the protocol-shippability of every workspace error type: the
//! line-delimited protocol sends `ERR <Display>` verbatim, so the
//! `Display` output of `ParseError`, `TypeError`, `EvalError` and
//! `MatrixError` must be a single line (no embedded newlines, no control
//! characters), and the messages clients may match on must stay stable.

use matlang_core::{evaluate, typecheck, EvalError, Expr, FunctionRegistry, Instance, Schema};
use matlang_core::{MatrixType, TypeError};
use matlang_matrix::{Matrix, MatrixError};
use matlang_parser::{parse, ParseError};
use matlang_semiring::Real;
use matlang_server::ServerError;

fn assert_single_line(error: &impl std::fmt::Display) {
    let message = error.to_string();
    assert!(!message.is_empty(), "error messages must not be empty");
    assert!(
        !message.chars().any(|c| c.is_control()),
        "error message contains a newline or control character: {message:?}"
    );
}

#[test]
fn parse_errors_are_single_line() {
    let cases: Vec<ParseError> = vec![
        parse("").unwrap_err(),                 // unexpected end
        parse("(A + B").unwrap_err(),           // unexpected end mid-expr
        parse("(A § B)").unwrap_err(),          // lexical error
        parse("(A + B) trailing").unwrap_err(), // trailing input
        parse("(A ? B)").unwrap_err(),          // unexpected token
    ];
    for error in &cases {
        assert_single_line(error);
    }
}

#[test]
fn type_errors_are_single_line() {
    let schema = Schema::new()
        .with_var("A", MatrixType::square("a"))
        .with_var("v", MatrixType::vector("a"));
    let cases: Vec<TypeError> = vec![
        typecheck(&Expr::var("Z"), &schema).unwrap_err(),
        typecheck(&Expr::var("A").add(Expr::var("v")), &schema).unwrap_err(),
        typecheck(&Expr::var("v").mm(Expr::var("A")), &schema).unwrap_err(),
        typecheck(&Expr::var("A").diag(), &schema).unwrap_err(),
        typecheck(&Expr::var("A").smul(Expr::var("A")), &schema).unwrap_err(),
        typecheck(&Expr::apply("f", vec![]), &schema).unwrap_err(),
        typecheck(&Expr::mprod("w", "a", Expr::var("v")), &schema).unwrap_err(),
    ];
    for error in &cases {
        assert_single_line(error);
    }
}

#[test]
fn eval_errors_are_single_line() {
    let registry = FunctionRegistry::<Real>::standard_field();
    let instance: Instance<Real> = Instance::new()
        .with_dim("a", 2)
        .with_matrix("A", Matrix::identity(2));
    let cases: Vec<EvalError> = vec![
        evaluate(&Expr::var("Z"), &instance, &registry).unwrap_err(),
        evaluate(
            &Expr::apply("nope", vec![Expr::var("A")]),
            &instance,
            &registry,
        )
        .unwrap_err(),
        evaluate(
            &Expr::sum("v", "missing", Expr::var("v")),
            &instance,
            &registry,
        )
        .unwrap_err(),
        evaluate(&Expr::var("A").smul(Expr::var("A")), &instance, &registry).unwrap_err(),
        evaluate(
            &Expr::var("A").mm(Expr::var("A").ones()).add(Expr::var("A")),
            &instance,
            &registry,
        )
        .unwrap_err(),
    ];
    for error in &cases {
        assert_single_line(error);
    }
}

#[test]
fn matrix_errors_are_single_line() {
    let cases: Vec<MatrixError> = vec![
        MatrixError::ShapeMismatch {
            left: (2, 3),
            right: (3, 2),
            op: "add",
        },
        MatrixError::InnerDimensionMismatch {
            left: (2, 3),
            right: (2, 3),
        },
        MatrixError::IndexOutOfBounds {
            row: 9,
            col: 9,
            shape: (2, 2),
        },
        MatrixError::NotAVector { shape: (2, 2) },
        MatrixError::NotSquare { shape: (2, 3) },
        MatrixError::NotAScalar { shape: (2, 3) },
        MatrixError::BadConstruction {
            message: "row 1 has 3 entries, expected 2".into(),
        },
        MatrixError::Singular {
            message: "no pivot in column 0".into(),
        },
    ];
    for error in &cases {
        assert_single_line(error);
    }
}

#[test]
fn server_errors_are_single_line_with_stable_codes() {
    let cases: Vec<(ServerError, &str)> = vec![
        (ServerError::InstanceExists { name: "g".into() }, "EEXISTS"),
        (ServerError::UnknownInstance { name: "g".into() }, "ENOINST"),
        (ServerError::UnknownVariable { var: "G".into() }, "ENOVAR"),
        (ServerError::UnknownQueryId { qid: 7 }, "ENOQUERY"),
        (ServerError::NoPreparedQueries, "ENOPREP"),
        (
            ServerError::Parse {
                message: "unexpected end of input".into(),
            },
            "EPARSE",
        ),
        (
            ServerError::Type {
                message: "shape mismatch".into(),
            },
            "ETYPE",
        ),
        (
            ServerError::Eval {
                message: "unbound matrix variable `Z`".into(),
            },
            "EEVAL",
        ),
        (ServerError::storage("entry (9, 9) out of bounds"), "ESTORE"),
        (ServerError::protocol("unknown command `NOPE`"), "EPROTO"),
    ];
    for (error, code) in &cases {
        assert_single_line(error);
        assert_eq!(error.code(), *code, "wire codes are a stable contract");
        assert!(
            !error.code().contains(char::is_whitespace),
            "codes must be single tokens"
        );
    }
}

/// The stable message prefixes the protocol documentation promises; a
/// reworded error is an API break for protocol clients matching on them.
#[test]
fn canonical_messages_are_pinned() {
    assert_eq!(
        parse("").unwrap_err().to_string(),
        "unexpected end of input"
    );
    let schema = Schema::new().with_var("A", MatrixType::square("a"));
    assert_eq!(
        typecheck(&Expr::var("Z"), &schema).unwrap_err().to_string(),
        "variable `Z` is not declared in the schema"
    );
    let registry = FunctionRegistry::<Real>::standard_field();
    let instance: Instance<Real> = Instance::new()
        .with_dim("a", 2)
        .with_matrix("A", Matrix::identity(2));
    assert_eq!(
        evaluate(&Expr::var("Z"), &instance, &registry)
            .unwrap_err()
            .to_string(),
        "unbound matrix variable `Z`"
    );
    assert_eq!(
        MatrixError::InnerDimensionMismatch {
            left: (2, 3),
            right: (2, 3)
        }
        .to_string(),
        "inner dimension mismatch in matrix product: 2x3 times 2x3"
    );
}
