//! End-to-end protocol tests against a live server on an ephemeral port.
//!
//! The load-bearing suite: results over the wire must be **bit-identical**
//! to [`matlang_core::evaluate`] for the shared evaluator corpus on both
//! storage backends, and incremental `UPDATE`s must invalidate exactly the
//! dependent cache entries (asserted through the per-request `ExecStats`
//! echoed in every `RESULT` header).

use matlang_core::{corpus, evaluate, Expr, FunctionRegistry, Instance, SparseInstance};
use matlang_matrix::{Matrix, MatrixRepr, MatrixStorage};
use matlang_semiring::Real;
use matlang_server::{Client, DeltaWire, ErrorCode, Server, ServerConfig, ServerHandle};

fn spawn() -> ServerHandle {
    Server::spawn(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    })
    .expect("server spawns on an ephemeral port")
}

/// The corpus instance: one square matrix `A` over size symbol `a`.
fn corpus_matrix() -> Matrix<Real> {
    Matrix::from_f64_rows(&[
        &[0.0, 1.0, 0.0, 2.0],
        &[0.0, 0.0, 3.0, 0.0],
        &[0.5, 0.0, 0.0, 1.0],
        &[4.0, 0.0, 0.0, 0.0],
    ])
    .unwrap()
}

/// PREPARE + EXEC every corpus expression over the wire and compare with
/// local evaluation on the given backend-typed instance.
fn assert_corpus_parity<M>(client: &mut Client, name: &str, local: &Instance<Real, M>)
where
    M: MatrixStorage<Elem = Real>,
{
    let registry = FunctionRegistry::standard_field();
    for expr in corpus::operator_corpus() {
        let expected = evaluate(&expr, local, &registry);
        let served = client
            .prepare(name, &expr.to_string())
            .and_then(|qid| client.exec(name, qid));
        match (expected, served) {
            (Ok(expected), Ok(result)) => {
                assert_eq!(
                    result.to_dense(),
                    expected.to_dense(),
                    "wire result diverged from core::evaluate for `{expr}` on {name}"
                );
                assert_eq!(
                    (result.rows, result.cols),
                    expected.shape(),
                    "shape diverged for `{expr}` on {name}"
                );
            }
            (Err(_), Err(_)) => {} // both paths reject: good enough parity
            (Ok(_), Err(e)) => panic!("server rejected `{expr}` on {name}: {e}"),
            (Err(e), Ok(_)) => {
                panic!("server accepted `{expr}` on {name} but core::evaluate fails: {e}")
            }
        }
    }
}

#[test]
fn corpus_results_are_bit_identical_on_both_backends() {
    let handle = spawn();
    let mut client = Client::connect(handle.addr()).unwrap();
    let a = corpus_matrix();

    client.create_instance("dense", false).unwrap();
    client.set_dim("dense", "a", 4).unwrap();
    client.load_matrix("dense", "A", &a).unwrap();
    let dense_local: Instance<Real> = Instance::new().with_dim("a", 4).with_matrix("A", a.clone());
    assert_corpus_parity(&mut client, "dense", &dense_local);

    client.create_instance("adaptive", true).unwrap();
    client.set_dim("adaptive", "a", 4).unwrap();
    client.load_matrix("adaptive", "A", &a).unwrap();
    let adaptive_local: SparseInstance<Real> = Instance::new()
        .with_dim("a", 4)
        .with_matrix("A", MatrixRepr::from_dense_auto(a));
    assert_corpus_parity(&mut client, "adaptive", &adaptive_local);

    handle.shutdown();
}

#[test]
fn four_clique_query_matches_local_evaluation() {
    let handle = spawn();
    let mut client = Client::connect(handle.addr()).unwrap();
    let a = corpus_matrix();
    client.create_instance("g", true).unwrap();
    client.set_dim("g", "a", 4).unwrap();
    client.load_matrix("g", "A", &a.clone()).unwrap();
    let expr = corpus::four_clique_corpus_expr();
    let local: Instance<Real> = Instance::new().with_dim("a", 4).with_matrix("A", a);
    let expected = evaluate(&expr, &local, &FunctionRegistry::standard_field()).unwrap();
    let result = client.query("g", &expr.to_string()).unwrap();
    assert_eq!(result.to_dense(), expected);
    handle.shutdown();
}

#[test]
fn update_invalidates_only_dependent_cache_entries() {
    let handle = spawn();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.create_instance("g", true).unwrap();
    client.set_dim("g", "n", 64).unwrap();
    client.gen_erdos_renyi("g", "G", "n", 4.0, 11).unwrap();
    client.gen_erdos_renyi("g", "H", "n", 4.0, 12).unwrap();

    // Two standing queries over G, one over H — batch-planned together.
    let over_g1 = client.prepare("g", "(transpose(G) * G)").unwrap();
    let over_g2 = client
        .prepare("g", "(transpose(ones(G)) * (G * ones(G)))")
        .unwrap();
    let over_h = client.prepare("g", "(H * H)").unwrap();
    // Warm every cache.
    let warm = client.exec_batch("g", &[over_g1, over_g2, over_h]).unwrap();
    assert!(warm.iter().all(|r| r.stats.cache_misses > 0));
    let h_before = warm[2].clone();

    // Update H only: dependent entries drop, and the RESULT stats prove
    // the G queries never recompute a single node.
    let reply = client
        .update("g", "H", &[(0, 1, 2.0), (1, 0, 3.0)])
        .unwrap();
    assert_eq!(reply.applied, 2);
    assert!(reply.invalidated >= 2, "H's dependent plan nodes must drop");
    // ℝ instances have no idempotent ⊕, so the UPDATE reply must report
    // the invalidation fallback with its stable reason code.
    assert_eq!(
        reply.delta,
        DeltaWire::Fallback {
            reason: "non-idempotent-semiring".to_string()
        }
    );
    for qid in [over_g1, over_g2] {
        let result = client.exec("g", qid).unwrap();
        assert_eq!(
            result.stats.cache_misses, 0,
            "untouched query {qid} recomputed nodes after an unrelated UPDATE"
        );
        assert!(result.stats.cache_hits >= 1);
        // Well above the ≥90%-of-plan-nodes bar: served entirely warm.
        assert!(
            result.stats.cache_misses * 10 <= result.plan_nodes as u64,
            "untouched prepared query must hit ≥90% of its plan nodes"
        );
    }
    let h_after = client.exec("g", over_h).unwrap();
    assert!(h_after.stats.cache_misses > 0, "H query must recompute");
    assert_ne!(h_after.entries, h_before.entries, "update must be visible");

    // The recomputed H result matches a from-scratch local evaluation of
    // the mutated instance.
    let mut h_local = Matrix::zeros(64, 64);
    // Rebuild H locally: generator output + the two updates.
    let generated: matlang_matrix::SparseMatrix<Real> =
        matlang_matrix::sparse_erdos_renyi(64, 4.0, 12);
    for (i, j, v) in generated.iter_entries() {
        h_local.set(i, j, *v).unwrap();
    }
    h_local.set(0, 1, Real(2.0)).unwrap();
    h_local.set(1, 0, Real(3.0)).unwrap();
    let local: Instance<Real> = Instance::new()
        .with_dim("n", 64)
        .with_matrix("H", h_local.clone());
    let expected = evaluate(
        &Expr::var("H").mm(Expr::var("H")),
        &local,
        &FunctionRegistry::standard_field(),
    )
    .unwrap();
    assert_eq!(h_after.to_dense(), expected);

    handle.shutdown();
}

#[test]
fn timing_guard_prepared_exec_beats_per_request_parse_plan_eval() {
    let handle = spawn();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.create_instance("g", true).unwrap();
    client.set_dim("g", "n", 400).unwrap();
    client.gen_erdos_renyi("g", "G", "n", 8.0, 21).unwrap();
    // Walk count over G² forced as a matrix-matrix product — enough
    // evaluation work that the one-shot path is dominated by
    // parse+plan+eval, not by the socket round trip, while the scalar
    // result keeps serialization negligible on both paths.
    let query = "(transpose(ones(G)) * (((G * G) * (G * G)) * ones(G)))";
    let qid = client.prepare("g", query).unwrap();
    let warm = client.exec("g", qid).unwrap();
    let reference = client.query("g", query).unwrap();
    assert_eq!(warm.to_dense(), reference.to_dense());

    let rounds = 10;
    let started = std::time::Instant::now();
    for _ in 0..rounds {
        let result = client.exec("g", qid).unwrap();
        assert_eq!(result.stats.cache_misses, 0, "prepared EXEC must stay warm");
    }
    let prepared_elapsed = started.elapsed();
    let started = std::time::Instant::now();
    for _ in 0..rounds {
        client.query("g", query).unwrap();
    }
    let oneshot_elapsed = started.elapsed();
    eprintln!(
        "prepared EXEC ×{rounds}: {prepared_elapsed:?} · one-shot QUERY ×{rounds}: {oneshot_elapsed:?}"
    );
    assert!(
        oneshot_elapsed >= prepared_elapsed * 3,
        "prepared EXEC must be ≥3× faster than per-request parse+plan+eval \
         (prepared {prepared_elapsed:?}, one-shot {oneshot_elapsed:?})"
    );
    handle.shutdown();
}

#[test]
fn sessions_on_separate_instances_run_concurrently() {
    let handle = spawn();
    let addr = handle.addr();
    let threads: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let name = format!("inst{t}");
                client.create_instance(&name, t % 2 == 0).unwrap();
                client.set_dim(&name, "n", 32).unwrap();
                client
                    .gen_erdos_renyi(&name, "G", "n", 3.0, 100 + t as u64)
                    .unwrap();
                let qid = client.prepare(&name, "(transpose(G) * G)").unwrap();
                let first = client.exec(&name, qid).unwrap();
                for _ in 0..20 {
                    let again = client.exec(&name, qid).unwrap();
                    assert_eq!(again.entries, first.entries);
                    assert_eq!(again.stats.cache_misses, 0);
                }
                client.quit().unwrap();
                first.entries.len()
            })
        })
        .collect();
    let sizes: Vec<usize> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    assert!(sizes.iter().all(|&n| n > 0));
    handle.shutdown();
}

#[test]
fn protocol_errors_are_single_line_and_recoverable() {
    let handle = spawn();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.create_instance("g", false).unwrap();
    client.set_dim("g", "n", 3).unwrap();
    client.load("g", "G", 3, 3, &[(0, 1, 1.0)]).unwrap();
    // Parse, type, eval and protocol errors all arrive as one
    // `ERR <CODE> <message>` line — typed on the client — and leave the
    // session usable.
    assert_eq!(
        client.prepare("g", "(G +").unwrap_err().code,
        ErrorCode::Parse
    );
    assert_eq!(
        client.prepare("g", "unknownvar").unwrap_err().code,
        ErrorCode::Type
    );
    // Hadamard shape mismatch is a type error too.
    assert_eq!(
        client.prepare("g", "(G ** (const 2))").unwrap_err().code,
        ErrorCode::Type
    );
    // No statement has been prepared yet, so EXEC reports ENOPREP …
    assert_eq!(
        client.exec("g", 999).unwrap_err().code,
        ErrorCode::NoPreparedQueries
    );
    assert_eq!(
        client.update("g", "G", &[(9, 9, 1.0)]).unwrap_err().code,
        ErrorCode::Storage
    );
    assert_eq!(
        client.query("missing", "(const 1)").unwrap_err().code,
        ErrorCode::UnknownInstance
    );
    assert_eq!(
        client
            .update("g", "missing", &[(0, 0, 1.0)])
            .unwrap_err()
            .code,
        ErrorCode::UnknownVariable
    );
    client.ping().unwrap();
    // A well-formed request still works afterwards.
    let qid = client.prepare("g", "(G + G)").unwrap();
    assert_eq!(client.exec("g", qid).unwrap().entries, vec![(0, 1, 2.0)]);
    // … and once a statement exists, a bad id is ENOQUERY.
    assert_eq!(
        client.exec("g", qid + 1).unwrap_err().code,
        ErrorCode::UnknownQueryId
    );
    handle.shutdown();
}
