//! Pressure-shedding test: a soft memory budget smaller than the loaded
//! data keeps the store permanently over budget, so every mutating
//! request sheds derived state — the cold half of the plan cache and the
//! memo caches of *idle* instances — while the just-used instance keeps
//! its warm cache and primary data is never touched.
//!
//! This file holds exactly one test: [`matlang_server::set_mem_budget`]
//! is process-wide, and a sibling test asserting `status=ok` in the same
//! binary would race it.

use matlang_server::{set_mem_budget, Store, StoreConfig};

fn top_token(lines: &[String], instance: &str, key: &str) -> u64 {
    let line = lines
        .iter()
        .find(|l| l.starts_with(&format!("instance={instance} ")))
        .unwrap_or_else(|| panic!("no {instance} line in TOP: {lines:?}"));
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("missing {key}= in `{line}`"))
}

#[test]
fn over_budget_store_sheds_plans_and_idle_memo_caches() {
    // Override semantics first (same test: the knob is process-wide).
    // MATLANG_MEM_BUDGET is unset in CI, so the resolved default is None.
    assert_eq!(matlang_server::mem_budget(), None);
    set_mem_budget(Some(4096));
    assert_eq!(matlang_server::mem_budget(), Some(4096));
    set_mem_budget(Some(0)); // explicitly unlimited
    assert_eq!(matlang_server::mem_budget(), None);
    set_mem_budget(None); // back to environment resolution
    assert_eq!(matlang_server::mem_budget(), None);

    // Capacity 2 so the "evict down to the cold half" plan-cache policy
    // is observable with two distinct plans.
    let store = Store::with_config(StoreConfig::builder().plan_cache_capacity(2).build());
    for name in ["a", "b"] {
        store.create_instance(name, true).unwrap();
        store.set_dim(name, "n", 16).unwrap();
        let entries: Vec<(usize, usize, f64)> = (0..16).map(|i| (i, (i + 3) % 16, 1.0)).collect();
        store.load_matrix(name, "G", 16, 16, entries).unwrap();
    }
    // Distinct queries so the two instances hold two distinct plans.
    store.prepare("a", "(G * G)").unwrap();
    store.prepare("b", "(G + G)").unwrap();
    assert_eq!(store.plan_cache_len(), 2);

    // One byte of budget: the primary data alone exceeds it forever.
    set_mem_budget(Some(1));

    // Warm both instances, `b` last: the shed pass after `b`'s EXEC sees
    // `a` idle with a resident memo cache and evicts it, plus the cold
    // half of the plan cache.  `b` (just used) must keep its warm cache.
    store.exec("a", &[0]).unwrap();
    store.exec("b", &[0]).unwrap();

    let top = store.top(None);
    assert_eq!(top.len(), 2);
    assert_eq!(
        top_token(&top, "a", "cache_entries"),
        0,
        "idle instance's memo cache must be shed: {top:?}"
    );
    assert!(
        top_token(&top, "b", "cache_entries") >= 1,
        "the just-used instance keeps its warm cache: {top:?}"
    );
    // Primary data is never shed.
    assert!(top_token(&top, "a", "data") > 0);
    assert!(top_token(&top, "b", "data") > 0);
    assert_eq!(
        store.plan_cache_len(),
        1,
        "cold half of the plan cache evicted"
    );

    let health = store.health();
    assert_eq!(health.status, "pressure");
    assert_eq!(health.budget, Some(1));
    assert!(health.total_bytes > 1);
    assert!(
        health.pressure_evictions >= 2,
        "plan + memo evictions must be counted, got {}",
        health.pressure_evictions
    );
    assert!(health.render().contains("status=pressure"));

    // Shed state is derived: the evicted instance recomputes and answers
    // correctly on the next EXEC.
    let replay = store.exec("a", &[0]).unwrap();
    assert_eq!(replay.len(), 1);

    set_mem_budget(None);
}
