//! Release-mode guard: drift-triggered re-planning must pay off.
//!
//! The scenario from the feedback loop's pitch: a standing chain query
//! `((A * B) * v)` is prepared while `A` is ~empty, so the cost-based
//! chain rewrite keeps the left association (the `A·B` prefix is
//! estimated tiny).  An `UPDATE` stream then flips `A` dense, after which
//! the stale association multiplies two dense n×n matrices per recompute
//! while the right association only ever touches matrix×vector work.
//! With drift feedback on, the first `EXEC` past the threshold re-plans
//! transparently; this guard pins the re-planned recompute at ≥2× faster
//! than executing the stale plan in release mode.
//!
//! Harness style follows `obs_overhead_guard`: interleaved adjacent-pair
//! rounds alternating which side runs first, median pair ratio, looser
//! bound in debug builds.
//!
//! This file holds exactly one test: it overrides the process-wide drift
//! threshold, which must not race sibling tests in the same binary.

use matlang_server::{set_replan_drift, Store};
use std::time::{Duration, Instant};

const N: usize = 192;

fn seeded(name: &str) -> Store {
    let store = Store::new();
    store.create_instance(name, true).unwrap();
    store.set_dim(name, "n", N).unwrap();
    // A starts ~empty; B and v are dense.
    store
        .load_matrix(name, "A", N, N, vec![(0, 0, 1.0)])
        .unwrap();
    let mut b = Vec::with_capacity(N * N);
    for i in 0..N {
        for j in 0..N {
            b.push((i, j, ((i + 2 * j) % 7 + 1) as f64));
        }
    }
    store.load_matrix(name, "B", N, N, b).unwrap();
    let v: Vec<(usize, usize, f64)> = (0..N).map(|i| (i, 0, (i % 5 + 1) as f64)).collect();
    store.load_matrix(name, "v", N, 1, v).unwrap();
    store
}

fn replans_of(store: &Store, name: &str) -> u64 {
    let stats = store.stats(name).unwrap();
    stats[0]
        .split_whitespace()
        .find_map(|t| t.strip_prefix("replans="))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("malformed STATS header: {}", stats[0]))
}

#[test]
fn timing_guard_drift_replanned_exec_beats_the_stale_plan_2x() {
    let (rounds, iters, margin) = if cfg!(debug_assertions) {
        (5, 2, 1.2)
    } else {
        (9, 8, 2.0)
    };

    // Plans must not leak between the two stores through a shared global
    // cache: `Store` keeps its plan cache per instance, per store.
    let stale = seeded("s");
    let fresh = seeded("f");
    let text = "((A * B) * v)";
    let stale_qid = stale.prepare("s", text).unwrap().qid;
    let fresh_qid = fresh.prepare("f", text).unwrap().qid;
    // Warm once while A is ~empty so observations are harvested against
    // the sparse regime the plan was built for.
    stale.exec("s", &[stale_qid]).unwrap();
    fresh.exec("f", &[fresh_qid]).unwrap();

    // The UPDATE stream: flip A from ~empty to fully dense on both.
    let mut flood = Vec::with_capacity(N * N);
    for i in 0..N {
        for j in 0..N {
            flood.push((i, j, ((i * 31 + j) % 11 + 1) as f64));
        }
    }
    // Freeze the stale side first so nothing re-plans while flooding.
    set_replan_drift(Some(f64::MAX));
    stale.update("s", "A", &flood).unwrap();
    fresh.update("f", "A", &flood).unwrap();
    stale.exec("s", &[stale_qid]).unwrap();
    assert_eq!(replans_of(&stale, "s"), 0, "stale side must keep its plan");
    // Let the fresh side see the drift at the default threshold: its next
    // EXEC transparently re-plans against the now-dense A.
    set_replan_drift(None);
    let replanned = fresh.exec("f", &[fresh_qid]).unwrap();
    assert_eq!(replans_of(&fresh, "f"), 1, "drift must trigger a re-plan");
    // Re-freeze before touching the stale side again: the measurement
    // below must compare plan quality, not further re-planning.
    set_replan_drift(Some(f64::MAX));
    // Same answer either way — the rewrite is association-only.
    let stale_now = stale.exec("s", &[stale_qid]).unwrap();
    assert_eq!(replans_of(&stale, "s"), 0, "stale side re-planned anyway");
    assert_eq!(replanned[0].entries, stale_now[0].entries);

    // Each iteration flips one A entry between two non-zero values (nnz
    // unchanged — no drift) to invalidate the memo cache, then recomputes
    // the chain.  The update cost is identical on both sides; what
    // differs is the association the plan executes.
    let mut toggle = 0u64;
    let mut run_round = |store: &Store, name: &str, qid: usize| -> Duration {
        let started = Instant::now();
        for _ in 0..iters {
            toggle += 1;
            let v = if toggle % 2 == 0 { 2.0 } else { 3.0 };
            store.update(name, "A", &[(0, 0, v)]).unwrap();
            let result = store.exec(name, &[qid]).unwrap();
            assert!(result[0].stats.cache_misses > 0, "EXEC must recompute");
        }
        started.elapsed()
    };

    // Warm-up, then adjacent-pair rounds with alternating order.
    run_round(&stale, "s", stale_qid);
    run_round(&fresh, "f", fresh_qid);
    let mut ratios = Vec::with_capacity(rounds);
    for pair in 0..rounds {
        let (slow, fast) = if pair % 2 == 0 {
            let slow = run_round(&stale, "s", stale_qid);
            (slow, run_round(&fresh, "f", fresh_qid))
        } else {
            let fast = run_round(&fresh, "f", fresh_qid);
            (run_round(&stale, "s", stale_qid), fast)
        };
        ratios.push(slow.as_secs_f64() / fast.as_secs_f64());
    }
    set_replan_drift(None);

    ratios.sort_by(|a, b| a.total_cmp(b));
    let ratio = ratios[rounds / 2];
    eprintln!(
        "chain recompute ×{iters}, {rounds} pairs: median stale/replanned ratio {ratio:.2} \
         (min {:.2}, max {:.2})",
        ratios[0],
        ratios[rounds - 1]
    );
    assert!(
        ratio >= margin,
        "re-planned EXEC is only {ratio:.2}× faster than the stale plan (need ≥{margin:.1}×)"
    );
}
