//! Release-mode guard: persistence must be free on the warm read path.
//!
//! Durability work happens on writes (`UPDATE` appends, rebinds
//! checkpoint); a warm prepared `EXEC` — root cache hit, no recompute —
//! must not pay for it at all.  This guard runs the same warm `EXEC`
//! loop against a persisted and an identical non-persisted instance in
//! interleaved rounds and pins the overhead at ≤5 % in release mode,
//! mirroring the obs-overhead guard's best-of-rounds ratio methodology.

use matlang_server::{Client, Server, ServerConfig, StoreConfig};
use std::fs;
use std::time::{Duration, Instant};

#[test]
fn timing_guard_persistence_overhead_on_warm_exec_is_within_five_percent() {
    let (pairs, iters, margin) = if cfg!(debug_assertions) {
        (6, 150, 1.5)
    } else {
        (12, 1_000, 1.05)
    };

    let dir = std::env::temp_dir().join(format!("matlang-persist-guard-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();

    let handle = Server::spawn(ServerConfig {
        workers: 1,
        store: StoreConfig::builder().data_dir(&dir).build(),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    // Two identical instances; only one is durable.
    let mut qids = [0usize; 2];
    for (slot, name) in ["on", "off"].iter().enumerate() {
        client.create_instance(name, true).unwrap();
        client.set_dim(name, "n", 64).unwrap();
        client.gen_erdos_renyi(name, "G", "n", 4.0, 7).unwrap();
        qids[slot] = client
            .prepare(name, "(transpose(ones(G)) * (G * ones(G)))")
            .unwrap();
        client.exec(name, qids[slot]).unwrap(); // warm the cache
    }
    client.set_persist("on", true).unwrap();
    client.update("on", "G", &[(0, 1, 1.0)]).unwrap(); // a real WAL record
    client.update("off", "G", &[(0, 1, 1.0)]).unwrap(); // keep states identical
    for (slot, name) in ["on", "off"].iter().enumerate() {
        client.exec(name, qids[slot]).unwrap(); // re-warm after the update
    }

    let mut run_round = |persisted: bool| -> Duration {
        let (name, qid) = if persisted {
            ("on", qids[0])
        } else {
            ("off", qids[1])
        };
        let started = Instant::now();
        for _ in 0..iters {
            let result = client.exec(name, qid).unwrap();
            debug_assert_eq!(result.stats.cache_misses, 0, "EXEC must stay warm");
        }
        started.elapsed()
    };

    run_round(true);
    run_round(false);
    const BEST_OF: usize = 3;
    let mut ratios = Vec::with_capacity(pairs);
    for pair in 0..pairs {
        let mut best = [Duration::MAX; 2]; // [persisted, plain]
        for rep in 0..2 * BEST_OF {
            let on = (pair + rep) % 2 == 0;
            let t = run_round(on);
            let slot = &mut best[usize::from(!on)];
            *slot = (*slot).min(t);
        }
        ratios.push(best[0].as_secs_f64() / best[1].as_secs_f64());
    }

    ratios.sort_by(|a, b| a.total_cmp(b));
    let ratio = ratios[pairs / 2];
    eprintln!(
        "warm EXEC ×{iters}, {pairs} pairs (best-of-{BEST_OF} per side): \
         median persisted/plain ratio {ratio:.4} (min {:.4}, max {:.4})",
        ratios[0],
        ratios[pairs - 1]
    );
    assert!(
        ratio <= margin,
        "persistence costs {:.1}% on warm EXEC (budget {:.0}%)",
        (ratio - 1.0) * 100.0,
        (margin - 1.0) * 100.0,
    );

    handle.shutdown();
    let _ = fs::remove_dir_all(&dir);
}
