//! Release-mode guard: cold-boot WAL replay must beat rebuilding the
//! instance from source commands.
//!
//! The point of the WAL is a faster restart: replaying a 1 000-update
//! log into a decoded snapshot skips per-update plan-cache invalidation,
//! delta-overlay bookkeeping, statistics refresh, and — decisively —
//! re-logging: reaching the *same durable state* without recovery means
//! re-ingesting on a durable store, which appends and fsyncs every one
//! of those updates again.  This guard builds a persisted instance with
//! a 1 000-record log, then times `Store::open` (recovery) against a
//! fresh durable `Store` fed the same `LOAD` plus the same 1 000
//! `update` calls, and pins recovery at ≥2× faster in release mode
//! (best-of-rounds on both sides).

use matlang_server::{Store, StoreConfig};
use std::fs;
use std::time::{Duration, Instant};

const N: usize = 64;
const UPDATES: usize = 1_000;

fn base_entries() -> Vec<(usize, usize, f64)> {
    (0..N).map(|i| (i, (i + 1) % N, (i + 1) as f64)).collect()
}

fn update_stream() -> Vec<(usize, usize, f64)> {
    (0..UPDATES)
        .map(|k| ((k * 7) % N, (k * 13 + 1) % N, (k % 97) as f64 + 0.5))
        .collect()
}

#[test]
fn timing_guard_wal_replay_beats_reload_from_source() {
    // Replay must win by 2× in release; debug only pins "not slower".
    let (rounds, factor) = if cfg!(debug_assertions) {
        (3, 1.0)
    } else {
        (5, 2.0)
    };

    let dir = std::env::temp_dir().join(format!("matlang-replay-guard-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();

    // Build the durable state once: snapshot of the base LOAD, then a
    // 1 000-record WAL (compaction pushed out of the way).
    {
        let store = Store::with_config(
            StoreConfig::builder()
                .data_dir(&dir)
                .wal_compact(1 << 30)
                .build(),
        );
        store.create_instance("g", true).unwrap();
        store.set_dim("g", "n", N).unwrap();
        store.load_matrix("g", "G", N, N, base_entries()).unwrap();
        store.set_persist("g", true).unwrap();
        for &entry in &update_stream() {
            store.update("g", "G", &[entry]).unwrap();
        }
        let stat = store.walstat("g").unwrap();
        assert_eq!(stat.records, UPDATES as u64, "log must hold every update");
    }

    let replay = || -> Duration {
        let started = Instant::now();
        let store = Store::with_config(
            StoreConfig::builder()
                .data_dir(&dir)
                .wal_compact(1 << 30)
                .build(),
        );
        let elapsed = started.elapsed();
        assert_eq!(store.list_instances(), vec!["g".to_string()]);
        elapsed
    };
    let reload_dir = std::env::temp_dir().join(format!(
        "matlang-replay-guard-reload-{}",
        std::process::id()
    ));
    let reload = || -> Duration {
        let _ = fs::remove_dir_all(&reload_dir);
        let started = Instant::now();
        let store = Store::with_config(
            StoreConfig::builder()
                .data_dir(&reload_dir)
                .wal_compact(1 << 30)
                .build(),
        );
        store.create_instance("g", true).unwrap();
        store.set_dim("g", "n", N).unwrap();
        store.load_matrix("g", "G", N, N, base_entries()).unwrap();
        store.set_persist("g", true).unwrap();
        for &entry in &update_stream() {
            store.update("g", "G", &[entry]).unwrap();
        }
        started.elapsed()
    };

    // Interleave and keep each side's minimum — load noise only adds.
    let (mut best_replay, mut best_reload) = (Duration::MAX, Duration::MAX);
    for _ in 0..rounds {
        best_replay = best_replay.min(replay());
        best_reload = best_reload.min(reload());
    }
    eprintln!(
        "cold boot over {UPDATES} updates: replay {best_replay:?} vs reload {best_reload:?} \
         ({:.2}× speedup, need {factor:.1}×)",
        best_reload.as_secs_f64() / best_replay.as_secs_f64()
    );
    assert!(
        best_replay.as_secs_f64() * factor <= best_reload.as_secs_f64(),
        "WAL replay ({best_replay:?}) must be ≥{factor}× faster than re-LOAD ({best_reload:?})"
    );

    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&reload_dir);
}
