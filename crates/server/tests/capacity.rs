//! Wire-level tests for the capacity-observability surface: byte-level
//! resource accounting (`instance_bytes{name=…}` vs ground truth), the
//! `HEALTH` / `TOP` / `TRACE EXPORT` verbs, per-session accounting, the
//! `_sum`/`_count` histogram series, and ring wraparound behaviour for
//! `SLOWLOG` and `TRACE EXPORT`.
//!
//! The metrics registry and trace rings are process-wide, so assertions
//! here are scoped to this file's own instance names and trace labels —
//! sibling tests in the same binary run concurrently.

use matlang_matrix::{Matrix, MatrixRepr, MatrixStorage, SparseMatrix};
use matlang_semiring::Real;
use matlang_server::{Client, Server, ServerConfig, ServerHandle};

fn spawn() -> ServerHandle {
    Server::spawn(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("server spawns on an ephemeral port")
}

/// Reads the value of a (possibly labelled) sample from a Prometheus
/// text exposition by exact name match on the first token.
fn scrape(text: &str, name: &str) -> Option<f64> {
    text.lines()
        .find(|line| line.split_whitespace().next() == Some(name))
        .and_then(|line| line.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

/// Asserts `observed` is within ±10 % of `truth` (the ISSUE's accounting
/// accuracy budget; the len-based accounting should in fact be exact).
fn assert_within_ten_percent(observed: f64, truth: usize, context: &str) {
    let truth = truth as f64;
    assert!(
        (observed - truth).abs() <= truth * 0.10,
        "{context}: observed {observed} vs ground truth {truth}"
    );
}

/// The labelled per-instance gauge, scraped off the wire.
fn instance_bytes(client: &mut Client, name: &str) -> f64 {
    let text = client.metrics().unwrap();
    scrape(&text, &format!("instance_bytes{{name=\"{name}\"}}"))
        .unwrap_or_else(|| panic!("no instance_bytes sample for `{name}` in:\n{text}"))
}

#[test]
fn instance_bytes_matches_ground_truth_across_backends() {
    let handle = spawn();
    let mut client = Client::connect(handle.addr()).unwrap();

    // Dense backend: bytes depend on the shape alone.
    let dense_entries = [
        (0, 1, 1.0),
        (2, 3, 2.0),
        (4, 5, 3.0),
        (6, 7, 4.0),
        (7, 0, 5.0),
    ];
    client.create_instance("cap_dense", false).unwrap();
    client.set_dim("cap_dense", "n", 8).unwrap();
    client.load("cap_dense", "G", 8, 8, &dense_entries).unwrap();
    let dense_truth = Matrix::<Real>::zeros(8, 8).heap_bytes();
    assert_within_ten_percent(
        instance_bytes(&mut client, "cap_dense"),
        dense_truth,
        "dense after LOAD",
    );
    // A point update changes values, not the dense footprint.
    client.update("cap_dense", "G", &[(3, 3, 9.0)]).unwrap();
    assert_within_ten_percent(
        instance_bytes(&mut client, "cap_dense"),
        dense_truth,
        "dense after UPDATE",
    );
    client.set_dim("cap_dense", "n", 8).unwrap();
    assert_within_ten_percent(
        instance_bytes(&mut client, "cap_dense"),
        dense_truth,
        "dense after DIM",
    );

    // Adaptive backend holding sparse data: the CSR accounting path.
    // Ground truth mirrors the server's own conversion on an identical
    // local matrix, so the figure is recomputed from dims and nnz.
    let sparse_entries: Vec<(usize, usize, f64)> = (0..16)
        .map(|i| (i * 2, (i * 2 + 5) % 32, 1.0 + i as f64))
        .collect();
    client.create_instance("cap_csr", true).unwrap();
    client.set_dim("cap_csr", "n", 32).unwrap();
    client
        .load("cap_csr", "G", 32, 32, &sparse_entries)
        .unwrap();
    let mut csr_mirror = MatrixRepr::<Real>::from_sparse(
        SparseMatrix::from_triplets(
            32,
            32,
            sparse_entries
                .iter()
                .map(|&(i, j, v)| (i, j, Real(v)))
                .collect(),
        )
        .unwrap(),
    );
    assert!(
        matches!(csr_mirror, MatrixRepr::Sparse(_)),
        "1.6% density must pick the CSR representation"
    );
    assert_within_ten_percent(
        instance_bytes(&mut client, "cap_csr"),
        csr_mirror.heap_bytes(),
        "adaptive/CSR after LOAD",
    );
    // Inserting new entries grows the CSR arrays; mirror the same
    // updates locally and the accounting must follow exactly.
    let updates = [(1, 1, 7.0), (3, 30, 8.0)];
    client.update("cap_csr", "G", &updates).unwrap();
    for &(i, j, v) in &updates {
        csr_mirror.set_entry(i, j, Real(v)).unwrap();
    }
    assert_within_ten_percent(
        instance_bytes(&mut client, "cap_csr"),
        csr_mirror.heap_bytes(),
        "adaptive/CSR after UPDATE",
    );
    client.set_dim("cap_csr", "n", 32).unwrap();
    assert_within_ten_percent(
        instance_bytes(&mut client, "cap_csr"),
        csr_mirror.heap_bytes(),
        "adaptive/CSR after DIM",
    );

    // Adaptive backend holding dense data: the adaptive wrapper must
    // delegate to the dense accounting once density picks Dense.
    let full: Vec<(usize, usize, f64)> = (0..6)
        .flat_map(|i| (0..5).map(move |j| (i, j, (i * 6 + j + 1) as f64)))
        .collect();
    client.create_instance("cap_adense", true).unwrap();
    client.set_dim("cap_adense", "n", 6).unwrap();
    client.load("cap_adense", "G", 6, 6, &full).unwrap();
    let adense_mirror = MatrixRepr::<Real>::from_sparse(
        SparseMatrix::from_triplets(
            6,
            6,
            full.iter().map(|&(i, j, v)| (i, j, Real(v))).collect(),
        )
        .unwrap(),
    );
    assert!(
        matches!(adense_mirror, MatrixRepr::Dense(_)),
        "83% density must pick the dense representation"
    );
    assert_within_ten_percent(
        instance_bytes(&mut client, "cap_adense"),
        adense_mirror.heap_bytes(),
        "adaptive/dense after LOAD",
    );

    handle.shutdown();
}

#[test]
fn health_and_top_expose_the_accounted_instance() {
    let handle = spawn();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.create_instance("cap_health", true).unwrap();
    client.set_dim("cap_health", "n", 16).unwrap();
    client
        .gen_erdos_renyi("cap_health", "G", "n", 3.0, 11)
        .unwrap();
    let qid = client.prepare("cap_health", "(G * G)").unwrap();
    client.exec("cap_health", qid).unwrap();

    // No budget is configured in this process, so pressure is impossible.
    let health = client.health().unwrap();
    let field = |key: &str| {
        health
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
            .map(str::to_string)
            .unwrap_or_else(|| panic!("missing {key}= in HEALTH `{health}`"))
    };
    assert_eq!(field("status"), "ok");
    assert!(field("bytes").parse::<u64>().unwrap() > 0);
    assert_eq!(field("budget"), "-");
    assert!(field("instances").parse::<usize>().unwrap() >= 1);
    assert!(field("connections").parse::<i64>().unwrap() >= 1);
    assert!(field("exec").parse::<u64>().unwrap() >= 1);
    // The rates are well-formed finite fractions.
    assert!(field("slow_rate").parse::<f64>().unwrap().is_finite());
    assert!(field("fallback_rate").parse::<f64>().unwrap().is_finite());

    // TOP carries one line for our instance with a warm memo cache and
    // the per-root residency column.
    let top = client.top(None).unwrap();
    let line = top
        .iter()
        .find(|l| l.starts_with("instance=cap_health "))
        .unwrap_or_else(|| panic!("no cap_health line in TOP: {top:?}"));
    let token = |key: &str| {
        line.split_whitespace()
            .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
            .map(str::to_string)
            .unwrap_or_else(|| panic!("missing {key}= in `{line}`"))
    };
    assert_eq!(token("backend"), "adaptive");
    assert_eq!(token("semiring"), "real");
    assert!(token("bytes").parse::<u64>().unwrap() > 0);
    assert!(token("data").parse::<u64>().unwrap() > 0);
    assert!(token("cache_entries").parse::<u64>().unwrap() >= 1);
    assert!(token("execs").parse::<u64>().unwrap() >= 1);
    assert!(
        token("roots").starts_with("q0:"),
        "roots column should lead with query 0: `{line}`"
    );

    // TOP 0 is a valid (empty) truncation; TOP n caps the row count.
    assert!(client.top(Some(0)).unwrap().is_empty());
    assert!(client.top(Some(1)).unwrap().len() == 1);

    handle.shutdown();
}

#[test]
fn histograms_expose_sum_and_count_series_on_the_wire() {
    let handle = spawn();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.create_instance("cap_hist", true).unwrap();
    client.set_dim("cap_hist", "n", 8).unwrap();
    client
        .gen_erdos_renyi("cap_hist", "G", "n", 2.0, 3)
        .unwrap();
    let qid = client.prepare("cap_hist", "(G * G)").unwrap();
    client.exec("cap_hist", qid).unwrap();

    // Lifetime exposition: `_sum`/`_count` are plain (un-labeled) series,
    // so they survive into the typed metrics map.
    let map = client.metrics_map().unwrap();
    let count = map
        .get("exec_latency_us_count")
        .copied()
        .expect("exec_latency_us_count series");
    let sum = map
        .get("exec_latency_us_sum")
        .copied()
        .expect("exec_latency_us_sum series");
    assert!(count >= 1.0);
    assert!(sum >= 0.0 && sum.is_finite());

    // Windowed exposition inherits the same series names.  Two scrapes
    // bracket the exec so the window has a baseline snapshot.
    client.exec("cap_hist", qid).unwrap();
    client.metrics().unwrap(); // second snapshot closes the window
    let window = client.metrics_window(3600).unwrap();
    assert!(
        window.contains("exec_latency_us_sum ") && window.contains("exec_latency_us_count "),
        "windowed exposition lost the _sum/_count series:\n{window}"
    );

    handle.shutdown();
}

#[test]
fn trace_export_emits_valid_chrome_trace_json() {
    let handle = spawn();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.create_instance("cap_trace", true).unwrap();
    client.set_dim("cap_trace", "n", 8).unwrap();
    client
        .gen_erdos_renyi("cap_trace", "G", "n", 2.0, 5)
        .unwrap();
    // QUERY opens a parse span, so its trace carries structure and lands
    // in the bounded ring for the export to pick up.
    for _ in 0..3 {
        client.query("cap_trace", "(G * transpose(G))").unwrap();
    }

    let text = client.trace_export(Some(16)).unwrap();
    let events = matlang_obs::export::validate_chrome_trace(&text)
        .unwrap_or_else(|e| panic!("TRACE EXPORT is not valid Chrome-trace JSON: {e}\n{text}"));
    assert!(events >= 1, "expected at least one exported event");
    assert!(text.contains("\"ph\":\"X\""));

    handle.shutdown();
}

#[test]
fn sessions_account_requests_bytes_and_exec_time() {
    let handle = spawn();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.create_instance("cap_sess", true).unwrap();
    client.set_dim("cap_sess", "n", 16).unwrap();
    client
        .gen_erdos_renyi("cap_sess", "G", "n", 3.0, 9)
        .unwrap();
    let qid = client.prepare("cap_sess", "(G * G)").unwrap();
    for _ in 0..50 {
        client.exec("cap_sess", qid).unwrap();
    }

    // Our session is live (registered) until `quit`; other tests'
    // sessions may coexist, so find the one that did the work.
    let sessions = handle.sessions();
    let ours = sessions
        .iter()
        .find(|s| s.requests >= 54)
        .unwrap_or_else(|| panic!("no session with ≥54 requests in {sessions:?}"));
    assert!(ours.bytes_out > 0, "bytes written must be accounted");
    assert!(
        ours.exec_time_us > 0,
        "50 EXEC dispatches must accrue execution time"
    );

    handle.shutdown();
}

#[test]
fn slowlog_and_trace_export_survive_ring_wraparound() {
    let handle = spawn();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.create_instance("cap_wrap", true).unwrap();
    client.set_dim("cap_wrap", "n", 4).unwrap();
    client
        .load("cap_wrap", "G", 4, 4, &[(0, 1, 1.0), (1, 2, 1.0)])
        .unwrap();

    // Zero threshold: every traced request is a slow query.  The server
    // workers share this process, so the override takes effect directly.
    matlang_obs::trace::set_slow_ms(0);
    // 300 requests — past the 256-slot rings — collecting the trace id
    // each RESULT header echoes, in issue order.
    const ISSUED: usize = 300;
    let mut issued_ids = Vec::with_capacity(ISSUED);
    for _ in 0..ISSUED {
        issued_ids.push(client.query("cap_wrap", "(G * G)").unwrap().trace);
    }
    matlang_obs::trace::set_slow_ms(matlang_obs::trace::SLOW_MS_UNSET);

    // Our retained slowlog entries must be exactly the *newest* suffix
    // of what we issued: same ids, same order, no duplicates, and
    // strictly fewer than issued (the ring wrapped).
    let entries = client.slowlog(Some(512)).unwrap();
    let ours: Vec<u64> = entries
        .iter()
        .filter(|e| e.label.starts_with("QUERY cap_wrap"))
        .map(|e| e.trace_id)
        .collect();
    assert!(!ours.is_empty(), "no cap_wrap entries in SLOWLOG");
    assert!(
        ours.len() < ISSUED,
        "ring must have evicted some of the {ISSUED} issued entries"
    );
    assert_eq!(
        ours,
        issued_ids[ISSUED - ours.len()..],
        "retained entries must be the newest issued suffix, in order"
    );
    let ids: Vec<u64> = entries.iter().map(|e| e.trace_id).collect();
    let mut deduped = ids.clone();
    deduped.sort_unstable();
    deduped.dedup();
    assert_eq!(deduped.len(), ids.len(), "duplicate trace ids in SLOWLOG");

    // Asking for the newest 8 returns exactly 8 (the ring is full) and
    // they are the tail of the full listing.
    let newest = client.slowlog(Some(8)).unwrap();
    assert_eq!(newest.len(), 8);
    let tail: Vec<u64> = entries[entries.len() - 8..]
        .iter()
        .map(|e| e.trace_id)
        .collect();
    assert_eq!(
        newest.iter().map(|e| e.trace_id).collect::<Vec<_>>(),
        tail,
        "SLOWLOG n must be the newest n entries"
    );

    // The trace ring wrapped too: the export of "everything" is valid
    // Chrome-trace JSON bounded by the ring capacity, and every exported
    // trace lane is distinct.
    let text = client.trace_export(Some(512)).unwrap();
    let events = matlang_obs::export::validate_chrome_trace(&text)
        .unwrap_or_else(|e| panic!("wrapped TRACE EXPORT invalid: {e}"));
    assert!(
        events >= 256,
        "a full 256-trace ring must export at least one event per trace, got {events}"
    );

    handle.shutdown();
}
