//! Durability suite: snapshot save/restore over the wire, WAL replay on
//! reopen pinned **bit-identical** to [`matlang_core::evaluate`] on both
//! storage backends, and the recovery edge cases — truncated WAL tail,
//! corrupt checksum mid-log, snapshot newer than the WAL (post-compaction
//! reopen), empty instances, and stale temp files left by a compaction
//! killed mid-rename.

use matlang_core::{evaluate, FunctionRegistry, Instance};
use matlang_matrix::Matrix;
use matlang_parser::parse;
use matlang_semiring::Real;
use matlang_server::{
    Client, SemiringKind, Server, ServerConfig, ServerHandle, Store, StoreConfig,
};
use std::fs;
use std::path::{Path, PathBuf};

/// A unique, empty scratch directory removed on drop (best effort — a
/// leaked dir under the system temp root is harmless).
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        let dir =
            std::env::temp_dir().join(format!("matlang-persistence-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        ScratchDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn spawn_on(dir: &Path) -> (ServerHandle, Client) {
    let handle = Server::spawn(ServerConfig {
        workers: 2,
        store: StoreConfig::builder().data_dir(dir).build(),
        ..ServerConfig::default()
    })
    .expect("spawn server");
    let client = Client::connect(handle.addr()).expect("connect");
    (handle, client)
}

fn dense_of(result: &matlang_server::WireResult) -> Matrix<Real> {
    let mut m = Matrix::zeros(result.rows, result.cols);
    for &(i, j, v) in &result.entries {
        m.set(i, j, Real(v)).unwrap();
    }
    m
}

fn mirror(n: usize, entries: &[(usize, usize, f64)]) -> Instance<Real> {
    let mut dense = Matrix::zeros(n, n);
    for &(i, j, v) in entries {
        dense.set(i, j, Real(v)).unwrap();
    }
    Instance::new().with_dim("n", n).with_matrix("G", dense)
}

/// Folds an update batch into the shadow coordinate list.
fn apply_shadow(current: &mut Vec<(usize, usize, f64)>, batch: &[(usize, usize, f64)]) {
    for &(i, j, v) in batch {
        current.retain(|&(a, b, _)| (a, b) != (i, j));
        if v != 0.0 {
            current.push((i, j, v));
        }
    }
}

#[test]
fn hello_announces_the_persist_capability() {
    let scratch = ScratchDir::new("hello");
    let (handle, mut client) = spawn_on(scratch.path());
    let hello = client.hello().unwrap();
    assert_eq!(hello.proto, 2);
    assert!(hello.has_capability("persist"));
    handle.shutdown();
}

#[test]
fn save_and_restore_roundtrip_over_the_wire() {
    let scratch = ScratchDir::new("roundtrip");
    for (adaptive, tag) in [(false, "dns"), (true, "adp")] {
        let (handle, mut client) = spawn_on(scratch.path());
        let name = format!("src-{tag}");
        client
            .create_instance_with(&name, adaptive, SemiringKind::Real)
            .unwrap();
        client.set_dim(&name, "n", 5).unwrap();
        let entries = [(0usize, 1usize, 1.5), (1, 2, -2.0), (4, 0, 3.25)];
        client.load(&name, "G", 5, 5, &entries).unwrap();
        let before = client.query(&name, "(G * G)").unwrap();

        let export = scratch.path().join(format!("{name}.export"));
        let bytes = client.save(&name, export.to_str()).unwrap();
        assert!(bytes > 0, "snapshot must not be empty");
        assert_eq!(bytes, fs::metadata(&export).unwrap().len());

        let copy = format!("copy-{tag}");
        let (dims, vars) = client.restore(&copy, export.to_str().unwrap()).unwrap();
        assert_eq!((dims, vars), (1, 1));
        let after = client.query(&copy, "(G * G)").unwrap();
        assert_eq!(
            dense_of(&before),
            dense_of(&after),
            "{tag}: restore diverged"
        );

        // Restoring over a taken name must fail without clobbering it.
        let err = client.restore(&name, export.to_str().unwrap()).unwrap_err();
        assert!(
            err.to_string().contains("already exists"),
            "expected an already-exists error, got `{err}`"
        );
        handle.shutdown();
    }
}

/// The acceptance-criteria test: persist, mutate through WAL-logged
/// updates, restart on the same data dir, and pin the recovered answers
/// bit-identical to both the pre-restart wire results and a
/// `core::evaluate` mirror — on dense and adaptive backends.
#[test]
fn reopen_replays_the_wal_bit_identical_to_core_evaluate() {
    const N: usize = 6;
    const CORPUS: &[&str] = &[
        "(G * G)",
        "(transpose(G) * (G + G))",
        "(transpose(ones(G)) * (G * ones(G)))",
    ];
    let registry = FunctionRegistry::standard_field();
    for (adaptive, tag) in [(false, "dns"), (true, "adp")] {
        let scratch = ScratchDir::new(&format!("reopen-{tag}"));
        let mut current = vec![(0, 1, 1.0), (1, 2, 2.0), (4, 5, -3.0)];
        let before: Vec<Matrix<Real>>;
        {
            let (handle, mut client) = spawn_on(scratch.path());
            client
                .create_instance_with("g", adaptive, SemiringKind::Real)
                .unwrap();
            client.set_dim("g", "n", N).unwrap();
            client.load("g", "G", N, N, &current).unwrap();
            client.set_persist("g", true).unwrap();

            let batches: Vec<Vec<(usize, usize, f64)>> = vec![
                vec![(2, 3, 4.0), (3, 4, 0.5)],
                vec![(0, 1, 0.0), (5, 0, 7.0)], // delete + insert
                vec![(4, 5, 9.0)],              // overwrite
            ];
            for batch in &batches {
                client.update("g", "G", batch).unwrap();
                apply_shadow(&mut current, batch);
            }
            let stat = client.walstat("g").unwrap();
            assert!(stat.persisted);
            assert_eq!(stat.records, 3, "one WAL record per applied batch");
            before = CORPUS
                .iter()
                .map(|text| dense_of(&client.query("g", text).unwrap()))
                .collect();
            handle.shutdown();
        }

        // Restart on the same data dir: recovery must replay the WAL.
        let (handle, mut client) = spawn_on(scratch.path());
        let stat = client.walstat("g").unwrap();
        assert!(stat.persisted, "{tag}: recovered instance stays persisted");
        let local = mirror(N, &current);
        for (text, pre) in CORPUS.iter().zip(&before) {
            let after = dense_of(&client.query("g", text).unwrap());
            assert_eq!(&after, pre, "{tag}: `{text}` diverged from pre-restart");
            let expected = evaluate(&parse(text).unwrap(), &local, &registry).unwrap();
            assert_eq!(
                after, expected,
                "{tag}: `{text}` diverged from core::evaluate"
            );
        }
        handle.shutdown();
    }
}

#[test]
fn truncated_wal_tail_is_tolerated() {
    let scratch = ScratchDir::new("torn-tail");
    let mut current = vec![(0, 1, 1.0), (1, 0, 2.0)];
    {
        let store = Store::open(scratch.path());
        store.create_instance("g", true).unwrap();
        store.set_dim("g", "n", 4).unwrap();
        store.load_matrix("g", "G", 4, 4, current.clone()).unwrap();
        store.set_persist("g", true).unwrap();
        let batch = vec![(2, 3, 5.0)];
        store.update("g", "G", &batch).unwrap();
        apply_shadow(&mut current, &batch);
    }
    // A crash mid-append leaves a partial frame at the tail.
    let wal = scratch.path().join("g.wal");
    let mut bytes = fs::read(&wal).unwrap();
    bytes.extend_from_slice(&[0x21, 0x00, 0x00, 0x00, 0xde, 0xad]); // half a frame
    fs::write(&wal, &bytes).unwrap();

    let store = Store::open(scratch.path());
    let qid = store.prepare("g", "(G * G)").unwrap().qid;
    let result = &store.exec("g", &[qid]).unwrap()[0];
    let registry = FunctionRegistry::standard_field();
    let expected = evaluate(&parse("(G * G)").unwrap(), &mirror(4, &current), &registry).unwrap();
    assert_eq!(
        dense_of(result),
        expected,
        "torn tail must not lose the prefix"
    );
}

#[test]
fn corrupt_checksum_mid_log_keeps_the_valid_prefix() {
    let scratch = ScratchDir::new("corrupt-mid");
    let mut current = vec![(0, 1, 1.0)];
    {
        let store = Store::open(scratch.path());
        store.create_instance("g", false).unwrap();
        store.set_dim("g", "n", 4).unwrap();
        store.load_matrix("g", "G", 4, 4, current.clone()).unwrap();
        store.set_persist("g", true).unwrap();
        // Three separate updates → three WAL frames.
        store.update("g", "G", &[(1, 2, 2.0)]).unwrap();
        store.update("g", "G", &[(2, 3, 3.0)]).unwrap();
        store.update("g", "G", &[(3, 0, 4.0)]).unwrap();
    }
    // Only the first record survives the corruption below.
    apply_shadow(&mut current, &[(1, 2, 2.0)]);

    // Flip a payload byte inside the *second* frame: its checksum breaks,
    // and recovery must treat everything from there on as a torn tail.
    let wal = scratch.path().join("g.wal");
    let mut bytes = fs::read(&wal).unwrap();
    let len1 = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
    let frame2_payload = 8 + len1 + 8; // frame 1 (header + payload) + frame 2 header
    bytes[frame2_payload] ^= 0xFF;
    fs::write(&wal, &bytes).unwrap();

    let store = Store::open(scratch.path());
    let qid = store.prepare("g", "(G * G)").unwrap().qid;
    let result = &store.exec("g", &[qid]).unwrap()[0];
    let registry = FunctionRegistry::standard_field();
    let expected = evaluate(&parse("(G * G)").unwrap(), &mirror(4, &current), &registry).unwrap();
    assert_eq!(
        dense_of(result),
        expected,
        "mid-log corruption must keep records before it and drop the rest"
    );
    // The instance stays persisted: new updates must land after the kept
    // prefix and survive another reopen.
    store.update("g", "G", &[(0, 3, 8.0)]).unwrap();
    apply_shadow(&mut current, &[(0, 3, 8.0)]);
    drop(store);
    let store = Store::open(scratch.path());
    let qid = store.prepare("g", "(G * G)").unwrap().qid;
    let expected = evaluate(&parse("(G * G)").unwrap(), &mirror(4, &current), &registry).unwrap();
    assert_eq!(dense_of(&store.exec("g", &[qid]).unwrap()[0]), expected);
}

#[test]
fn snapshot_newer_than_wal_reopens_cleanly() {
    let scratch = ScratchDir::new("snap-newer");
    let mut current = vec![(0, 1, 1.0)];
    let seq_before;
    {
        let store = Store::open(scratch.path());
        store.create_instance("g", true).unwrap();
        store.set_dim("g", "n", 4).unwrap();
        store.load_matrix("g", "G", 4, 4, current.clone()).unwrap();
        store.set_persist("g", true).unwrap();
        let batch = vec![(1, 2, 2.0), (2, 3, 3.0)];
        store.update("g", "G", &batch).unwrap();
        apply_shadow(&mut current, &batch);
        // SAVE without a path compacts: fresh snapshot, truncated WAL.
        // The snapshot's covered sequence is now *ahead* of every WAL
        // record (there are none).
        store.save("g", None).unwrap();
        let stat = store.walstat("g").unwrap();
        assert_eq!(stat.records, 0, "compaction must empty the log");
        assert!(stat.seq > 0, "the issued sequence survives compaction");
        seq_before = stat.seq;
    }
    let store = Store::open(scratch.path());
    let stat = store.walstat("g").unwrap();
    assert!(
        stat.seq >= seq_before,
        "recovered sequence {} must not fall behind the snapshot's {}",
        stat.seq,
        seq_before
    );
    let qid = store.prepare("g", "(G * G)").unwrap().qid;
    let registry = FunctionRegistry::standard_field();
    let expected = evaluate(&parse("(G * G)").unwrap(), &mirror(4, &current), &registry).unwrap();
    assert_eq!(dense_of(&store.exec("g", &[qid]).unwrap()[0]), expected);
    // Fresh updates must be assigned sequences beyond the snapshot.
    store.update("g", "G", &[(3, 0, 4.0)]).unwrap();
    assert!(store.walstat("g").unwrap().seq > seq_before);
}

#[test]
fn empty_instance_roundtrips_through_recovery() {
    let scratch = ScratchDir::new("empty");
    {
        let store = Store::open(scratch.path());
        store.create_instance("void", false).unwrap();
        store.set_persist("void", true).unwrap();
    }
    let store = Store::open(scratch.path());
    assert_eq!(store.list_instances(), vec!["void".to_string()]);
    let stat = store.walstat("void").unwrap();
    assert!(stat.persisted);
    assert_eq!(stat.records, 0);
}

#[test]
fn stale_tmp_file_from_a_killed_compaction_is_ignored() {
    let scratch = ScratchDir::new("stale-tmp");
    let current = vec![(0, 1, 1.0), (2, 2, 4.0)];
    {
        let store = Store::open(scratch.path());
        store.create_instance("g", true).unwrap();
        store.set_dim("g", "n", 3).unwrap();
        store.load_matrix("g", "G", 3, 3, current.clone()).unwrap();
        store.set_persist("g", true).unwrap();
    }
    // A compaction killed before its atomic rename leaves `*.snap.tmp`
    // garbage next to the good snapshot; recovery must not read it.
    fs::write(scratch.path().join("g.snap.tmp"), b"half-written garbage").unwrap();
    fs::write(scratch.path().join("orphan.snap.tmp"), b"\x00\x01\x02").unwrap();

    let store = Store::open(scratch.path());
    assert_eq!(store.list_instances(), vec!["g".to_string()]);
    let qid = store.prepare("g", "(G * G)").unwrap().qid;
    let registry = FunctionRegistry::standard_field();
    let expected = evaluate(&parse("(G * G)").unwrap(), &mirror(3, &current), &registry).unwrap();
    assert_eq!(dense_of(&store.exec("g", &[qid]).unwrap()[0]), expected);
}

#[test]
fn corrupt_snapshot_is_skipped_without_panicking() {
    let scratch = ScratchDir::new("corrupt-snap");
    {
        let store = Store::open(scratch.path());
        store.create_instance("good", true).unwrap();
        store.set_dim("good", "n", 3).unwrap();
        store.set_persist("good", true).unwrap();
        store.create_instance("bad", true).unwrap();
        store.set_persist("bad", true).unwrap();
    }
    // Destroy one snapshot wholesale; the other instance must still come
    // back and the store must not panic.
    fs::write(scratch.path().join("bad.snap"), b"not a snapshot at all").unwrap();
    let store = Store::open(scratch.path());
    assert_eq!(store.list_instances(), vec!["good".to_string()]);
}

#[test]
fn persist_requires_a_data_dir_and_safe_names() {
    // No data dir: PERSIST on must fail with a storage error.
    let store = Store::new();
    store.create_instance("g", true).unwrap();
    if store.data_dir().is_none() {
        let err = store.set_persist("g", true).unwrap_err();
        assert!(
            err.to_string().contains("data directory"),
            "expected a data-directory error, got `{err}`"
        );
    }
    // Unsafe instance names must never touch the filesystem.
    let scratch = ScratchDir::new("unsafe-name");
    let store = Store::open(scratch.path());
    store.create_instance("../evil", true).unwrap();
    assert!(store.set_persist("../evil", true).is_err());
}
