//! Feedback-driven re-planning must never change results.
//!
//! With the drift threshold forced to its floor (`set_replan_drift(1.0)`)
//! every `UPDATE` that changes a variable's nnz makes the next `EXEC`
//! re-plan from current + observed statistics.  This suite runs a corpus
//! of standing queries on both storage backends through repeated
//! update → re-plan cycles and pins every result **bit-identical** to
//! [`matlang_core::evaluate`] over a mirrored instance — the same
//! contract the `server_integration` suite pins for the static path.
//! The CI matrix repeats it under `MATLANG_THREADS=1` and `=4`.
//!
//! This file holds exactly one test: it overrides the process-wide drift
//! threshold, which must not race sibling tests in the same binary.

use matlang_core::{evaluate, FunctionRegistry, Instance};
use matlang_matrix::Matrix;
use matlang_parser::parse;
use matlang_semiring::Real;
use matlang_server::{set_replan_drift, Store};

const N: usize = 6;

const CORPUS: &[&str] = &[
    "(G * G)",
    "(transpose(G) * (G + G))",
    "((G * G) * G)",
    "(transpose(ones(G)) * (G * ones(G)))",
    "(sum v:n . (transpose(v) * (G * v)))",
];

/// Three update batches that swing G's density up and down so successive
/// EXECs keep crossing the forced drift floor.
fn update_batches() -> Vec<Vec<(usize, usize, f64)>> {
    let mut fill = Vec::new();
    for i in 0..N {
        for j in 0..N {
            fill.push((i, j, (i * N + j + 1) as f64));
        }
    }
    let mut thin = Vec::new();
    for i in 0..N {
        for j in 0..N {
            if (i + j) % 3 != 0 {
                thin.push((i, j, 0.0));
            }
        }
    }
    vec![fill, thin, vec![(0, N - 1, 42.0), (N - 1, 0, -7.0)]]
}

fn mirror(entries: &[(usize, usize, f64)]) -> Instance<Real> {
    let mut dense = Matrix::zeros(N, N);
    for &(i, j, v) in entries {
        dense.set(i, j, Real(v)).unwrap();
    }
    Instance::new().with_dim("n", N).with_matrix("G", dense)
}

fn dense_of(result: &matlang_server::WireResult) -> Matrix<Real> {
    let mut m = Matrix::zeros(result.rows, result.cols);
    for &(i, j, v) in &result.entries {
        m.set(i, j, Real(v)).unwrap();
    }
    m
}

#[test]
fn forced_drift_replans_stay_bit_identical_to_core_evaluate() {
    set_replan_drift(Some(1.0));
    let registry = FunctionRegistry::standard_field();
    for adaptive in [false, true] {
        let name = if adaptive { "adp" } else { "dns" };
        let store = Store::new();
        store.create_instance(name, adaptive).unwrap();
        store.set_dim(name, "n", N).unwrap();
        let seed = vec![(0, 1, 1.0), (1, 2, 2.0), (4, 5, -3.0)];
        store.load_matrix(name, "G", N, N, seed.clone()).unwrap();
        let qids: Vec<usize> = CORPUS
            .iter()
            .map(|text| store.prepare(name, text).unwrap().qid)
            .collect();

        // Shadow state: the entries currently in G, by coordinate.
        let mut current = seed;
        let check = |store: &Store, current: &[(usize, usize, f64)]| {
            let local = mirror(current);
            for (text, &qid) in CORPUS.iter().zip(&qids) {
                let expr = parse(text).unwrap();
                let expected = evaluate(&expr, &local, &registry).unwrap();
                let results = store.exec(name, &[qid]).unwrap();
                assert_eq!(
                    dense_of(&results[0]),
                    expected,
                    "{name}: `{text}` diverged from core::evaluate"
                );
            }
        };

        check(&store, &current);
        for batch in update_batches() {
            store.update(name, "G", &batch).unwrap();
            for &(i, j, v) in &batch {
                current.retain(|&(a, b, _)| (a, b) != (i, j));
                if v != 0.0 {
                    current.push((i, j, v));
                }
            }
            check(&store, &current);
        }

        // The floor threshold must actually have exercised the re-plan
        // path — otherwise this suite is vacuous.
        let stats = store.stats(name).unwrap();
        let replans: u64 = stats[0]
            .split_whitespace()
            .find_map(|t| t.strip_prefix("replans="))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("malformed STATS header: {}", stats[0]));
        assert!(replans >= 1, "no re-plan happened on {name}: {}", stats[0]);
    }
    set_replan_drift(None);
}
