//! Wire-level tests for the proto-2 `obs` surface: the `METRICS` /
//! `EXPLAIN` / `PROFILE` / `STATS` / `SLOWLOG` verbs, the `trace=` token
//! on `RESULT` headers, the detailed `LIST` reply and the empty-`UPDATE`
//! short-circuit.
//!
//! The metrics registry is process-wide, so counter assertions here are
//! monotone (nonzero / increased-by) rather than exact — other tests in
//! the same process may be incrementing them concurrently.

use matlang_server::{Client, DeltaWire, Server, ServerConfig, ServerHandle};

fn spawn() -> ServerHandle {
    Server::spawn(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("server spawns on an ephemeral port")
}

/// Seeds one adaptive Boolean instance `g` with a 4-cycle.
fn seed(client: &mut Client, name: &str) {
    client
        .create_instance_with(name, true, matlang_server::SemiringKind::Boolean)
        .unwrap();
    client.set_dim(name, "n", 4).unwrap();
    client
        .load(
            name,
            "G",
            4,
            4,
            &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)],
        )
        .unwrap();
}

/// Reads the value of a counter from a Prometheus text exposition.
fn scrape(text: &str, name: &str) -> Option<f64> {
    text.lines()
        .find(|line| line.split_whitespace().next() == Some(name))
        .and_then(|line| line.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

#[test]
fn hello_announces_the_obs_capability() {
    let handle = spawn();
    let mut client = Client::connect(handle.addr()).unwrap();
    let hello = client.hello().unwrap();
    assert_eq!(hello.proto, 2);
    assert!(hello.has_capability("obs"), "caps: {:?}", hello.caps);
    handle.shutdown();
}

#[test]
fn metrics_scrape_exposes_the_request_counters() {
    let handle = spawn();
    let mut client = Client::connect(handle.addr()).unwrap();
    seed(&mut client, "g");
    let qid = client.prepare("g", "(G * G)").unwrap();
    client.exec("g", qid).unwrap();
    client.update("g", "G", &[(0, 2, 1.0)]).unwrap();

    let text = client.metrics().unwrap();
    assert!(
        text.contains("# TYPE exec_total counter"),
        "missing TYPE comment in:\n{text}"
    );
    for name in [
        "exec_total",
        "prepare_total",
        "update_total",
        "requests_total",
        "connections_total",
        "delta_applied_total",
    ] {
        let value = scrape(&text, name)
            .unwrap_or_else(|| panic!("metric {name} missing from scrape:\n{text}"));
        assert!(value >= 1.0, "{name} should be nonzero, got {value}");
    }
    // Latency histograms render as summaries with quantile lines.
    assert!(text.contains("# TYPE exec_latency_us summary"));
    assert!(text.contains("exec_latency_us{quantile=\"0.99\"}"));
    assert!(scrape(&text, "exec_latency_us_count").unwrap_or(0.0) >= 1.0);
    handle.shutdown();
}

#[test]
fn explain_renders_the_rewritten_plan_without_executing() {
    let handle = spawn();
    let mut client = Client::connect(handle.addr()).unwrap();
    seed(&mut client, "g");
    let lines = client.explain("g", "(transpose(G) * (G + G))").unwrap();
    assert!(
        lines[0].starts_with("instance g backend=adaptive semiring=bool"),
        "header line: {}",
        lines[0]
    );
    assert!(
        lines.iter().any(|l| l.starts_with("plan nodes=")),
        "missing plan summary in {lines:?}"
    );
    // Per-node lines carry the cost estimates and eligibility flags.
    let node = lines
        .iter()
        .find(|l| l.contains("matmul"))
        .unwrap_or_else(|| panic!("no matmul node in {lines:?}"));
    assert!(node.contains("est "), "no estimate on `{node}`");
    assert!(node.contains("cache="), "no cache flag on `{node}`");
    assert!(node.contains("delta="), "no delta flag on `{node}`");
    assert!(
        lines.iter().any(|l| l.starts_with("root q0 = #")),
        "missing root line in {lines:?}"
    );
    // EXPLAIN on garbage is an ERR, not a block.
    assert!(client.explain("g", "(G +").is_err());
    assert!(client.explain("missing", "G").is_err());
    handle.shutdown();
}

#[test]
fn profile_reports_per_node_wall_time_and_sizes() {
    let handle = spawn();
    let mut client = Client::connect(handle.addr()).unwrap();
    seed(&mut client, "g");
    let lines = client.profile("g", "(transpose(G) * (G + G))").unwrap();
    assert!(
        lines[0].starts_with("instance g backend=adaptive semiring=bool total_us="),
        "header line: {}",
        lines[0]
    );
    let nodes: Vec<&String> = lines.iter().filter(|l| l.starts_with('#')).collect();
    assert!(nodes.len() >= 3, "expected per-node lines, got {lines:?}");
    for node in &nodes {
        assert!(node.contains("computed="), "no computed count on `{node}`");
        assert!(node.contains("nnz="), "no nnz on `{node}`");
    }
    // Every node of a one-shot profile run computes exactly once (CSE
    // means `G` appears once in the DAG even though the text uses it
    // three times).
    assert!(
        nodes.iter().all(|l| l.contains("computed=1")),
        "one-shot profile should compute each node once: {lines:?}"
    );
    assert!(
        lines.last().unwrap().starts_with("totals nodes="),
        "missing totals line in {lines:?}"
    );
    handle.shutdown();
}

#[test]
fn result_headers_carry_a_per_query_trace_id() {
    let handle = spawn();
    let mut client = Client::connect(handle.addr()).unwrap();
    seed(&mut client, "g");
    let qid = client.prepare("g", "(G * G)").unwrap();
    let first = client.exec("g", qid).unwrap();
    let second = client.exec("g", qid).unwrap();
    assert_ne!(first.trace, 0, "EXEC must run under a trace");
    assert_ne!(second.trace, 0);
    assert_ne!(first.trace, second.trace, "each EXEC gets a fresh trace id");
    let one_shot = client.query("g", "(G + G)").unwrap();
    assert_ne!(one_shot.trace, 0, "QUERY must run under a trace");
    handle.shutdown();
}

#[test]
fn list_reports_backend_semiring_and_delta_counters() {
    let handle = spawn();
    let mut client = Client::connect(handle.addr()).unwrap();
    seed(&mut client, "g");
    client.create_instance("plain", false).unwrap();
    let qid = client.prepare("g", "(G * G)").unwrap();
    client.exec("g", qid).unwrap(); // warm: the insert below patches
    let reply = client.update("g", "G", &[(0, 2, 1.0)]).unwrap();
    assert!(matches!(reply.delta, DeltaWire::Applied { patched } if patched > 0));

    let names = client.list().unwrap();
    assert_eq!(names, vec!["g".to_string(), "plain".to_string()]);
    let entries = client.list_detailed().unwrap();
    assert_eq!(entries.len(), 2);
    assert_eq!(entries[0].name, "g");
    assert_eq!(entries[0].backend, "adaptive");
    assert_eq!(entries[0].semiring, "bool");
    assert!(
        entries[0].delta_patches > 0,
        "the applied delta must show up in LIST: {entries:?}"
    );
    assert_eq!(entries[0].delta_fallbacks, 0);
    assert_eq!(entries[1].name, "plain");
    assert_eq!(entries[1].backend, "dense");
    assert_eq!(entries[1].semiring, "real");
    handle.shutdown();
}

#[test]
fn metrics_map_parses_the_exposition_into_typed_samples() {
    let handle = spawn();
    let mut client = Client::connect(handle.addr()).unwrap();
    seed(&mut client, "g");
    let qid = client.prepare("g", "(G * G)").unwrap();
    client.exec("g", qid).unwrap();

    let map = client.metrics_map().unwrap();
    for name in ["exec_total", "requests_total", "connections_total"] {
        let value = map
            .get(name)
            .unwrap_or_else(|| panic!("{name} missing from {map:?}"));
        assert!(*value >= 1.0, "{name} should be nonzero, got {value}");
    }
    // Labeled summary samples (histogram quantiles) are skipped; their
    // un-labeled _count twin is kept.
    assert!(
        map.keys().all(|k| !k.contains('{')),
        "labeled key in {map:?}"
    );
    assert!(map.get("exec_latency_us_count").copied().unwrap_or(0.0) >= 1.0);
    handle.shutdown();
}

#[test]
fn metrics_window_reports_deltas_and_rates() {
    let handle = spawn();
    let mut client = Client::connect(handle.addr()).unwrap();
    seed(&mut client, "g");
    let qid = client.prepare("g", "(G * G)").unwrap();
    // A bare METRICS records a snapshot into the window ring; traffic
    // between two scrapes shows up as windowed deltas.
    client.metrics().unwrap();
    client.exec("g", qid).unwrap();
    client.exec("g", qid).unwrap();

    let text = client.metrics_window(3600).unwrap();
    assert!(
        text.lines()
            .next()
            .unwrap()
            .starts_with("# window requested_s=3600"),
        "window header missing:\n{text}"
    );
    let delta = scrape(&text, "exec_total_delta")
        .unwrap_or_else(|| panic!("exec_total_delta missing from:\n{text}"));
    assert!(
        delta >= 2.0,
        "both EXECs must land in the window, got {delta}"
    );
    assert!(
        scrape(&text, "exec_total_rate").is_some(),
        "missing rate gauge in:\n{text}"
    );
    handle.shutdown();
}

#[test]
fn stats_reports_the_feedback_state_over_the_wire() {
    let handle = spawn();
    let mut client = Client::connect(handle.addr()).unwrap();
    seed(&mut client, "g");
    let qid = client.prepare("g", "(G * G)").unwrap();
    client.exec("g", qid).unwrap();

    let lines = client.stats("g").unwrap();
    assert!(
        lines[0].starts_with("instance g backend=adaptive semiring=bool generation=0 replans=0"),
        "header: {}",
        lines[0]
    );
    assert!(
        lines.iter().any(|l| l.starts_with("var G ")
            && l.contains("observed_nnz=4")
            && l.contains("referenced=yes")),
        "missing observed var line in {lines:?}"
    );
    assert!(
        lines.last().unwrap().starts_with("observed nodes="),
        "missing footer in {lines:?}"
    );
    assert!(client.stats("missing").is_err());
    handle.shutdown();
}

#[test]
fn slowlog_captures_plan_and_profile_forensics() {
    let handle = spawn();
    let mut client = Client::connect(handle.addr()).unwrap();
    seed(&mut client, "slowg");
    let qid = client.prepare("slowg", "(transpose(G) * (G * G))").unwrap();
    // Lower the slow threshold to zero so this EXEC qualifies, then
    // restore the environment-driven default for sibling tests.
    matlang_obs::trace::set_slow_ms(0);
    let result = client.exec("slowg", qid).unwrap();
    matlang_obs::trace::set_slow_ms(matlang_obs::trace::SLOW_MS_UNSET);
    assert_ne!(result.trace, 0);

    let entries = client.slowlog(Some(32)).unwrap();
    let entry = entries
        .iter()
        .find(|e| e.trace_id == result.trace)
        .unwrap_or_else(|| panic!("EXEC trace {:x} not in slowlog: {entries:?}", result.trace));
    assert!(entry.label.contains("EXEC slowg"), "label: {}", entry.label);
    assert!(
        entry.detail.iter().any(|l| l.starts_with("plan nodes=")),
        "forensics must carry the rewritten-DAG explain: {:?}",
        entry.detail
    );
    assert!(
        entry.detail.iter().any(|l| l.starts_with("observed #")),
        "forensics must carry per-node observations: {:?}",
        entry.detail
    );
    handle.shutdown();
}

#[test]
fn profile_does_not_pollute_the_warm_memo_cache() {
    let handle = spawn();
    let mut client = Client::connect(handle.addr()).unwrap();
    seed(&mut client, "g");
    let qid = client.prepare("g", "(G * G)").unwrap();
    client.exec("g", qid).unwrap(); // cold run populates the cache
    let warm_before = client.exec("g", qid).unwrap();
    assert_eq!(warm_before.stats.cache_misses, 0);

    // PROFILE executes the same text on a scratch executor; the
    // instance's persistent memo cache must be untouched either way.
    client.profile("g", "(G * G)").unwrap();
    client.profile("g", "(G + G)").unwrap();

    let warm_after = client.exec("g", qid).unwrap();
    assert_eq!(
        warm_after.stats.cache_misses, 0,
        "PROFILE invalidated the warm cache"
    );
    assert_eq!(
        warm_after.stats.cache_hits, warm_before.stats.cache_hits,
        "PROFILE changed the warm EXEC hit profile"
    );
    handle.shutdown();
}

#[test]
fn empty_update_batches_short_circuit_without_touching_the_cache() {
    let handle = spawn();
    let mut client = Client::connect(handle.addr()).unwrap();
    seed(&mut client, "g");
    let qid = client.prepare("g", "(G * G)").unwrap();
    client.exec("g", qid).unwrap(); // warm the cache

    let reply = client.update("g", "G", &[]).unwrap();
    assert_eq!(reply.applied, 0);
    assert_eq!(reply.invalidated, 0);
    assert_eq!(
        reply.delta,
        DeltaWire::Applied { patched: 0 },
        "an empty batch is a trivially exact delta application"
    );
    // The warm cache survived: the next EXEC is a single root hit.
    let warm = client.exec("g", qid).unwrap();
    assert_eq!(warm.stats.cache_misses, 0, "empty UPDATE dropped the cache");
    assert_eq!(warm.stats.cache_hits, 1);
    // An empty batch against an unknown variable still errors.
    assert!(client.update("g", "missing", &[]).is_err());
    handle.shutdown();
}
