//! Release-mode guard: observability must be ~free on the hot path.
//!
//! A warm prepared `EXEC` — root cache hit, no recompute — is the
//! latency-sensitive request; with obs enabled it additionally opens a
//! trace, stamps span/trace ids, bumps counters and records latency
//! histograms.  This guard runs the same warm `EXEC` loop with the obs
//! layer enabled and disabled ([`matlang_obs::set_enabled`]) in
//! interleaved rounds and pins the overhead at ≤5 % in release mode.
//! Interleaving plus best-of-rounds makes this a same-machine ratio
//! comparison, so shared-runner noise cannot bias one side.
//!
//! This file holds exactly one test: it toggles the process-wide enable
//! flag, which must not race sibling tests in the same binary.

use matlang_server::{Client, Server, ServerConfig};
use std::time::{Duration, Instant};

#[test]
fn timing_guard_obs_overhead_on_warm_exec_is_within_five_percent() {
    // Debug builds measure the unoptimized instrumentation (every
    // `Instant::now` is a real call, allocations are slow): keep the
    // guard meaningful but only pin the hard 5 % bound in release.
    let (rounds, iters, margin) = if cfg!(debug_assertions) {
        (8, 150, 1.5)
    } else {
        (24, 500, 1.05)
    };

    let handle = Server::spawn(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.create_instance("g", true).unwrap();
    client.set_dim("g", "n", 64).unwrap();
    client.gen_erdos_renyi("g", "G", "n", 4.0, 7).unwrap();
    // A scalar result keeps serialization out of the measurement; the
    // warm root hit keeps computation out of it.  What remains is the
    // wire round trip plus the per-request session/dispatch work the
    // instrumentation rides on.
    let qid = client
        .prepare("g", "(transpose(ones(G)) * (G * ones(G)))")
        .unwrap();
    client.exec("g", qid).unwrap(); // warm the cache

    let mut run_round = |enabled: bool| -> Duration {
        matlang_obs::set_enabled(enabled);
        let started = Instant::now();
        for _ in 0..iters {
            let result = client.exec("g", qid).unwrap();
            debug_assert_eq!(result.stats.cache_misses, 0, "EXEC must stay warm");
        }
        started.elapsed()
    };

    // Warm-up round on each side (socket buffers, branch predictors).
    run_round(true);
    run_round(false);
    // Machine load on a shared runner drifts at second scale, so a
    // min-over-all-rounds comparison can pit a lucky round on one side
    // against an unlucky one on the other.  Instead compare *adjacent*
    // rounds — which see near-identical load — as one ratio per pair,
    // alternating which side runs first to cancel intra-pair drift, and
    // take the median pair ratio.
    let mut ratios = Vec::with_capacity(rounds);
    for pair in 0..rounds {
        let (on, off) = if pair % 2 == 0 {
            let on = run_round(true);
            (on, run_round(false))
        } else {
            let off = run_round(false);
            (run_round(true), off)
        };
        ratios.push(on.as_secs_f64() / off.as_secs_f64());
    }
    matlang_obs::set_enabled(true);

    ratios.sort_by(|a, b| a.total_cmp(b));
    let ratio = ratios[rounds / 2];
    eprintln!(
        "warm EXEC ×{iters}, {rounds} pairs: median on/off ratio {ratio:.4} \
         (min {:.4}, max {:.4})",
        ratios[0],
        ratios[rounds - 1]
    );
    assert!(
        ratio <= margin,
        "obs instrumentation costs {:.1}% on warm EXEC (budget {:.0}%)",
        (ratio - 1.0) * 100.0,
        (margin - 1.0) * 100.0,
    );
}
