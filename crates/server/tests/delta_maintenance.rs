//! Wire-level tests for delta-driven view maintenance: the protocol-2
//! `HELLO` banner, `UPDATE` replies carrying `delta=applied`/`delta=fallback`
//! tokens, cumulative delta counters in `RESULT` headers, and — the
//! load-bearing contract — results served from a patched cache staying
//! **bit-identical** to a cold recompute on a fresh instance holding the
//! same final matrices.

use matlang_server::{Client, DeltaWire, SemiringKind, Server, ServerConfig, ServerHandle};

fn spawn() -> (ServerHandle, Client) {
    let handle = Server::spawn(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("spawn server");
    let client = Client::connect(handle.addr()).expect("connect");
    (handle, client)
}

#[test]
fn hello_announces_proto_2_and_the_delta_capability() {
    let (handle, mut client) = spawn();
    let hello = client.hello().unwrap();
    assert_eq!(hello.proto, 2);
    assert!(hello.has_capability("delta"));
    assert!(hello.has_capability("errcodes"));
    assert!(hello.has_capability("semirings"));
    assert!(!hello.has_capability("timetravel"));
    handle.shutdown();
}

#[test]
fn boolean_inserts_patch_the_standing_query_over_the_wire() {
    let (handle, mut client) = spawn();
    client
        .create_instance_with("g", true, SemiringKind::Boolean)
        .unwrap();
    client.set_dim("g", "n", 4).unwrap();
    let base = [(0usize, 1usize, 1.0), (1, 2, 1.0), (2, 3, 1.0)];
    client.load("g", "G", 4, 4, &base).unwrap();
    let qid = client.prepare("g", "(G * G)").unwrap();
    client.exec("g", qid).unwrap(); // warm the cache

    // Insert-only update on an idempotent semiring: exact delta.
    let inserted = [(3usize, 0usize, 1.0), (0, 2, 1.0)];
    let reply = client.update("g", "G", &inserted).unwrap();
    assert_eq!(reply.applied, 2);
    assert_eq!(reply.invalidated, 0, "a delta pass drops nothing");
    assert!(
        matches!(reply.delta, DeltaWire::Applied { patched } if patched > 0),
        "expected delta=applied, got {:?}",
        reply.delta
    );

    // The warm execution answers entirely from the patched cache …
    let warm = client.exec("g", qid).unwrap();
    assert_eq!(warm.stats.cache_misses, 0);
    assert!(
        warm.stats.delta_patches > 0,
        "header carries delta counters"
    );
    assert_eq!(warm.stats.delta_fallbacks, 0);

    // … and is bit-identical to a cold recompute over the final matrix.
    let mut final_g: Vec<(usize, usize, f64)> = base.to_vec();
    final_g.extend_from_slice(&inserted);
    client
        .create_instance_with("cold", true, SemiringKind::Boolean)
        .unwrap();
    client.set_dim("cold", "n", 4).unwrap();
    client.load("cold", "G", 4, 4, &final_g).unwrap();
    let cold = client.query("cold", "(G * G)").unwrap();
    assert_eq!(warm.entries, cold.entries);
    assert_eq!((warm.rows, warm.cols), (cold.rows, cold.cols));

    handle.shutdown();
}

#[test]
fn deletes_fall_back_with_the_stable_reason_code() {
    let (handle, mut client) = spawn();
    client
        .create_instance_with("g", false, SemiringKind::Boolean)
        .unwrap();
    client.set_dim("g", "n", 3).unwrap();
    client
        .load("g", "G", 3, 3, &[(0, 1, 1.0), (1, 2, 1.0)])
        .unwrap();
    let qid = client.prepare("g", "(G * G)").unwrap();
    client.exec("g", qid).unwrap();

    // Zeroing a present entry is not absorbed by ⊕: fallback.
    let reply = client.update("g", "G", &[(0, 1, 0.0)]).unwrap();
    assert_eq!(
        reply.delta,
        DeltaWire::Fallback {
            reason: "not-insert-only".to_string()
        }
    );
    assert!(reply.invalidated > 0, "dependents are dropped on fallback");

    // The recompute reflects the delete and the header counts the fallback.
    let after = client.exec("g", qid).unwrap();
    assert!(after.entries.is_empty(), "the only two-hop path is gone");
    assert!(after.stats.delta_fallbacks >= 1);

    handle.shutdown();
}

#[test]
fn non_idempotent_semirings_report_why_they_cannot_delta() {
    let (handle, mut client) = spawn();
    for (name, kind) in [("r", SemiringKind::Real), ("nat", SemiringKind::Nat)] {
        client.create_instance_with(name, true, kind).unwrap();
        client.set_dim(name, "n", 3).unwrap();
        client
            .load(name, "G", 3, 3, &[(0, 1, 1.0), (1, 2, 1.0)])
            .unwrap();
        let qid = client.prepare(name, "(G * G)").unwrap();
        client.exec(name, qid).unwrap();
        let reply = client.update(name, "G", &[(2, 0, 1.0)]).unwrap();
        assert_eq!(
            reply.delta,
            DeltaWire::Fallback {
                reason: "non-idempotent-semiring".to_string()
            },
            "{name}: ⊕ is not idempotent, so inserts may double-count"
        );
        // Correctness is preserved by recomputation either way.
        let after = client.exec(name, qid).unwrap();
        assert!(after.entries.contains(&(0, 2, 1.0)));
        assert!(after.entries.contains(&(1, 0, 1.0)));
    }
    handle.shutdown();
}

#[test]
fn minplus_lowering_patches_and_raising_falls_back_over_the_wire() {
    let (handle, mut client) = spawn();
    client
        .create_instance_with("sp", true, SemiringKind::MinPlus)
        .unwrap();
    client.set_dim("sp", "n", 3).unwrap();
    client
        .load("sp", "G", 3, 3, &[(0, 1, 4.0), (1, 2, 5.0)])
        .unwrap();
    let qid = client.prepare("sp", "(G * G)").unwrap();
    let cold = client.exec("sp", qid).unwrap();
    assert_eq!(cold.entries, vec![(0, 2, 9.0)]);

    // Lowering an edge weight is absorbed by min: exact delta.
    let reply = client.update("sp", "G", &[(0, 1, 2.0)]).unwrap();
    assert!(matches!(reply.delta, DeltaWire::Applied { .. }));
    let warm = client.exec("sp", qid).unwrap();
    assert_eq!(warm.entries, vec![(0, 2, 7.0)]);
    assert_eq!(warm.stats.cache_misses, 0);

    // Raising it back up is not: fallback, then a correct recompute.
    let reply = client.update("sp", "G", &[(0, 1, 8.0)]).unwrap();
    assert_eq!(
        reply.delta,
        DeltaWire::Fallback {
            reason: "not-insert-only".to_string()
        }
    );
    let after = client.exec("sp", qid).unwrap();
    assert_eq!(after.entries, vec![(0, 2, 13.0)]);

    handle.shutdown();
}

/// A batch touching several variables in sequence, where some updates take
/// the delta path and others force invalidation, must keep every standing
/// query bit-identical to a cold recompute of the final state.
#[test]
fn mixed_delta_and_fallback_updates_stay_bit_identical_to_cold() {
    let (handle, mut client) = spawn();
    client
        .create_instance_with("g", true, SemiringKind::Boolean)
        .unwrap();
    client.set_dim("g", "n", 5).unwrap();
    let g0 = [(0usize, 1usize, 1.0), (1, 2, 1.0), (2, 3, 1.0)];
    let h0 = [(1usize, 4usize, 1.0), (2, 0, 1.0), (3, 1, 1.0)];
    client.load("g", "G", 5, 5, &g0).unwrap();
    client.load("g", "H", 5, 5, &h0).unwrap();
    let q_gh = client.prepare("g", "(G * H)").unwrap();
    let q_gg = client.prepare("g", "(G * G)").unwrap();
    client.exec("g", q_gh).unwrap();
    client.exec("g", q_gg).unwrap();

    // G takes the delta path (pure inserts, some redundant) …
    let g_up = [(3usize, 4usize, 1.0), (0, 1, 1.0)];
    let reply = client.update("g", "G", &g_up).unwrap();
    assert!(
        matches!(reply.delta, DeltaWire::Applied { .. }),
        "redundant re-inserts are absorbed, the batch stays insert-only"
    );

    // … while H mixes an insert with a delete in one batch: fallback.
    let h_up = [(0usize, 3usize, 1.0), (1, 4, 0.0)];
    let reply = client.update("g", "H", &h_up).unwrap();
    assert_eq!(
        reply.delta,
        DeltaWire::Fallback {
            reason: "not-insert-only".to_string()
        }
    );

    // Replay the final state cold and compare both standing queries.
    let mut g_final = g0.to_vec();
    g_final.extend_from_slice(&g_up);
    let h_final = vec![(2usize, 0usize, 1.0), (3, 1, 1.0), (0, 3, 1.0)];
    client
        .create_instance_with("cold", true, SemiringKind::Boolean)
        .unwrap();
    client.set_dim("cold", "n", 5).unwrap();
    client.load("cold", "G", 5, 5, &g_final).unwrap();
    client.load("cold", "H", 5, 5, &h_final).unwrap();
    for (qid, text) in [(q_gh, "(G * H)"), (q_gg, "(G * G)")] {
        let warm = client.exec("g", qid).unwrap();
        let cold = client.query("cold", text).unwrap();
        assert_eq!(warm.entries, cold.entries, "{text} diverged from cold");
    }

    // The header counters saw both paths on this instance.
    let last = client.exec("g", q_gg).unwrap();
    assert!(last.stats.delta_patches > 0);
    assert!(last.stats.delta_fallbacks > 0);

    handle.shutdown();
}

/// Delta counters in `RESULT` headers are cumulative per instance and
/// only ever grow.
#[test]
fn header_delta_counters_accumulate_across_updates() {
    let (handle, mut client) = spawn();
    client
        .create_instance_with("g", true, SemiringKind::Boolean)
        .unwrap();
    client.set_dim("g", "n", 4).unwrap();
    client.load("g", "G", 4, 4, &[(0, 1, 1.0)]).unwrap();
    let qid = client.prepare("g", "(G * G)").unwrap();
    client.exec("g", qid).unwrap();

    let mut last_patches = 0;
    for step in 0..3u64 {
        let s = step as usize;
        let edge = (1 + s, (2 + s) % 4, 1.0);
        let reply = client.update("g", "G", &[edge]).unwrap();
        assert!(matches!(reply.delta, DeltaWire::Applied { .. }));
        let result = client.exec("g", qid).unwrap();
        assert!(
            result.stats.delta_patches > last_patches,
            "step {step}: counter must strictly grow on an applied delta"
        );
        last_patches = result.stats.delta_patches;
    }

    handle.shutdown();
}
