//! Regression: `DROP` on a persisted instance must remove its snapshot
//! and WAL files and retract its `wal_bytes` gauge contribution — no
//! orphaned on-disk state, no stuck metrics.
//!
//! This file holds exactly this suite: it asserts on the process-wide
//! `wal_bytes` aggregate, which must not race sibling tests publishing
//! into the same registry.

use matlang_server::{Client, Server, ServerConfig, StoreConfig};
use std::fs;
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("matlang-drop-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn drop_removes_files_and_retracts_the_wal_bytes_gauge() {
    let dir = scratch("gauge");
    let handle = Server::spawn(ServerConfig {
        workers: 1,
        store: StoreConfig::builder().data_dir(&dir).build(),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let baseline = client
        .metrics_map()
        .unwrap()
        .get("wal_bytes")
        .copied()
        .unwrap_or(0.0);

    client.create_instance("g", true).unwrap();
    client.set_dim("g", "n", 4).unwrap();
    client
        .load("g", "G", 4, 4, &[(0, 1, 1.0), (1, 2, 2.0)])
        .unwrap();
    client.set_persist("g", true).unwrap();
    client.update("g", "G", &[(2, 3, 3.0)]).unwrap();
    client.update("g", "G", &[(3, 0, 4.0)]).unwrap();

    let stat = client.walstat("g").unwrap();
    assert!(stat.wal_bytes > 0, "updates must grow the log");
    let during = *client.metrics_map().unwrap().get("wal_bytes").unwrap();
    assert_eq!(
        during - baseline,
        stat.wal_bytes as f64,
        "the gauge must carry exactly this instance's log size"
    );
    let snap = dir.join("g.snap");
    let wal = dir.join("g.wal");
    assert!(snap.exists() && wal.exists(), "persisted files must exist");

    client.drop_instance("g").unwrap();

    assert!(!snap.exists(), "DROP must remove the snapshot");
    assert!(!wal.exists(), "DROP must remove the WAL");
    let after = *client.metrics_map().unwrap().get("wal_bytes").unwrap();
    assert_eq!(after, baseline, "DROP must retract the gauge exactly");

    // PERSIST off is the same contract without dropping the data.
    client.create_instance("h", false).unwrap();
    client.set_dim("h", "n", 3).unwrap();
    client.set_persist("h", true).unwrap();
    client.update("h", "G", &[(0, 0, 1.0)]).unwrap_err(); // no such var
    client.load("h", "H", 3, 3, &[(0, 0, 1.0)]).unwrap();
    client.update("h", "H", &[(1, 1, 2.0)]).unwrap();
    assert!(dir.join("h.snap").exists());
    client.set_persist("h", false).unwrap();
    assert!(!dir.join("h.snap").exists() && !dir.join("h.wal").exists());
    assert_eq!(
        *client.metrics_map().unwrap().get("wal_bytes").unwrap(),
        baseline,
        "PERSIST off must retract the gauge exactly"
    );
    let r = client.query("h", "(H * H)").unwrap();
    assert_eq!(r.rows, 3, "the in-memory instance survives PERSIST off");

    handle.shutdown();
    let _ = fs::remove_dir_all(&dir);
}
