//! Evaluator parity: the whole eval test corpus — every operator of the
//! language, the paper's worked examples, and randomized expressions — must
//! produce identical results over the dense backend (`Instance<K>`) and the
//! adaptive sparse backend (`SparseInstance<K>`).

use matlang_core::corpus::{four_clique_corpus_expr, operator_corpus};
use matlang_core::{evaluate, EvalError, Expr, FunctionRegistry, Instance, SparseInstance};
use matlang_matrix::{random_adjacency, random_matrix, Matrix, MatrixRepr, RandomMatrixConfig};
use matlang_semiring::{Boolean, Nat, Real, Semiring};

/// Builds the sparse twin of a dense instance: same dims, same matrices,
/// adaptive representation.
fn sparsify<K: Semiring>(dense: &Instance<K>) -> SparseInstance<K> {
    let mut out: SparseInstance<K> = Instance::new();
    for (sym, n) in dense.dims() {
        out.set_dim(sym.clone(), n);
    }
    for (var, m) in dense.matrices() {
        out.set_matrix(var.clone(), MatrixRepr::from_dense_auto(m.clone()));
    }
    out
}

/// Evaluates `expr` over both backends and asserts identical results (or
/// identical errors).
fn assert_backend_parity<K: Semiring>(
    expr: &Expr,
    instance: &Instance<K>,
    registry: &FunctionRegistry<K>,
) {
    let dense = evaluate(expr, instance, registry);
    let sparse = evaluate(expr, &sparsify(instance), registry);
    match (dense, sparse) {
        (Ok(d), Ok(s)) => assert_eq!(
            d,
            s.to_dense(),
            "dense and sparse evaluation disagree for {expr}"
        ),
        (Err(de), Err(se)) => assert_eq!(
            std::mem::discriminant(&de),
            std::mem::discriminant(&se),
            "dense and sparse evaluation fail differently for {expr}: {de} vs {se}"
        ),
        (d, s) => panic!("backend mismatch for {expr}: dense {d:?}, sparse {s:?}"),
    }
}

fn real_registry() -> FunctionRegistry<Real> {
    FunctionRegistry::standard_field()
}

fn mat(rows: &[&[f64]]) -> Matrix<Real> {
    Matrix::from_f64_rows(rows).unwrap()
}

fn real_instance(n: usize, a: Matrix<Real>) -> Instance<Real> {
    Instance::new().with_dim("a", n).with_matrix("A", a)
}

// The operator corpus (including error cases) now lives in
// `matlang_core::corpus`, shared with the `matlang_engine` parity suite.

#[test]
fn operator_corpus_has_backend_parity() {
    let a = mat(&[&[1.0, 2.0, 0.0], &[0.0, 3.0, 4.0], &[5.0, 0.0, 6.0]]);
    let inst = real_instance(3, a);
    let reg = real_registry();
    for expr in operator_corpus() {
        assert_backend_parity(&expr, &inst, &reg);
    }
}

#[test]
fn four_clique_example_has_backend_parity() {
    let e = four_clique_corpus_expr();
    let mut k4: Matrix<Real> = Matrix::zeros(4, 4);
    for i in 0..4 {
        for j in 0..4 {
            if i != j {
                k4.set(i, j, Real(1.0)).unwrap();
            }
        }
    }
    assert_backend_parity(&e, &real_instance(4, k4), &real_registry());
}

#[test]
fn random_boolean_reachability_has_backend_parity() {
    // The prod-MATLANG transitive closure shape: Πv. (I + A) — evaluated
    // over 𝔹 no thresholding function is needed.
    let identity = Expr::sum("w", "a", Expr::var("w").mm(Expr::var("w").t()));
    let e = Expr::mprod("v", "a", identity.add(Expr::var("A")));
    let reg: FunctionRegistry<Boolean> = FunctionRegistry::new();
    for seed in 0..5 {
        let adj: Matrix<Boolean> = random_adjacency(7, 0.25, seed);
        let inst: Instance<Boolean> = Instance::new().with_dim("a", 7).with_matrix("A", adj);
        assert_backend_parity(&e, &inst, &reg);
    }
}

#[test]
fn random_nat_expressions_have_backend_parity() {
    let cfg = |seed| RandomMatrixConfig {
        seed,
        min_value: 0.0,
        max_value: 4.0,
        zero_probability: 0.6,
        integer_entries: true,
    };
    let reg: FunctionRegistry<Nat> = FunctionRegistry::new();
    for seed in 0..5 {
        let a: Matrix<Nat> = random_matrix(6, 6, &cfg(seed));
        let b: Matrix<Nat> = random_matrix(6, 6, &cfg(seed + 100));
        let inst: Instance<Nat> = Instance::new()
            .with_dim("a", 6)
            .with_matrix("A", a)
            .with_matrix("B", b);
        for expr in [
            Expr::var("A").mm(Expr::var("B")).add(Expr::var("A")),
            Expr::var("A").had(Expr::var("B")).t(),
            Expr::sum(
                "v",
                "a",
                Expr::var("v").t().mm(Expr::var("A")).mm(Expr::var("v")),
            ),
            Expr::var("A").ones().diag().mm(Expr::var("B")),
        ] {
            assert_backend_parity(&expr, &inst, &reg);
        }
    }
}

#[test]
fn sparse_results_report_storage_decisions() {
    // Sanity-check the adaptive backend actually chooses sparse storage for
    // a sparse workload: diag of the ones vector at n = 32 is the 32×32
    // identity, density 1/32.
    let inst: SparseInstance<Real> = Instance::new()
        .with_dim("a", 32)
        .with_matrix("A", MatrixRepr::from_dense_auto(Matrix::zeros(32, 32)));
    let out = evaluate(
        &Expr::var("A").ones().diag(),
        &inst,
        &FunctionRegistry::new(),
    )
    .unwrap();
    assert!(out.is_sparse(), "identity at n=32 should stay CSR");
    assert_eq!(out.nnz(), 32);
    assert_eq!(out.to_dense(), Matrix::identity(32));
}

#[test]
fn unknown_variable_error_shape_is_shared() {
    // Both backends surface the same error type through the shared eval code.
    let inst: SparseInstance<Real> = Instance::new().with_dim("a", 2);
    let err = evaluate(&Expr::var("Q"), &inst, &FunctionRegistry::new()).unwrap_err();
    assert!(matches!(err, EvalError::UnknownVariable { .. }));
}
