//! Pretty-printing of expressions in a concrete textual syntax.
//!
//! The syntax printed here is the one accepted by the `matlang-parser` crate;
//! the parser's round-trip tests rely on `format!("{expr}")` producing a
//! string that parses back to an equal AST.

use crate::expr::Expr;
use std::fmt;

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_expr(self, f)
    }
}

fn write_expr(expr: &Expr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match expr {
        Expr::Var(name) => write!(f, "{name}"),
        Expr::Const(c) => write!(f, "(const {c})"),
        Expr::Transpose(e) => {
            write!(f, "transpose(")?;
            write_expr(e, f)?;
            write!(f, ")")
        }
        Expr::Ones(e) => {
            write!(f, "ones(")?;
            write_expr(e, f)?;
            write!(f, ")")
        }
        Expr::Diag(e) => {
            write!(f, "diag(")?;
            write_expr(e, f)?;
            write!(f, ")")
        }
        Expr::MatMul(a, b) => binary(f, "(", a, " * ", b, ")"),
        Expr::Add(a, b) => binary(f, "(", a, " + ", b, ")"),
        Expr::ScalarMul(a, b) => binary(f, "(", a, " .* ", b, ")"),
        Expr::Hadamard(a, b) => binary(f, "(", a, " ** ", b, ")"),
        Expr::Apply(name, args) => {
            write!(f, "apply[{name}](")?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write_expr(a, f)?;
            }
            write!(f, ")")
        }
        Expr::Let { var, value, body } => {
            write!(f, "(let {var} = ")?;
            write_expr(value, f)?;
            write!(f, " in ")?;
            write_expr(body, f)?;
            write!(f, ")")
        }
        Expr::For {
            var,
            var_dim,
            acc,
            acc_type,
            init,
            body,
        } => {
            write!(
                f,
                "(for {var}:{var_dim}, {acc}:[{},{}]",
                acc_type.rows, acc_type.cols
            )?;
            if let Some(init) = init {
                write!(f, " = ")?;
                write_expr(init, f)?;
            }
            write!(f, " . ")?;
            write_expr(body, f)?;
            write!(f, ")")
        }
        Expr::Sum { var, var_dim, body } => quantifier(f, "sum", var, var_dim, body),
        Expr::HProd { var, var_dim, body } => quantifier(f, "hprod", var, var_dim, body),
        Expr::MProd { var, var_dim, body } => quantifier(f, "mprod", var, var_dim, body),
    }
}

fn binary(
    f: &mut fmt::Formatter<'_>,
    open: &str,
    a: &Expr,
    sep: &str,
    b: &Expr,
    close: &str,
) -> fmt::Result {
    write!(f, "{open}")?;
    write_expr(a, f)?;
    write!(f, "{sep}")?;
    write_expr(b, f)?;
    write!(f, "{close}")
}

fn quantifier(
    f: &mut fmt::Formatter<'_>,
    name: &str,
    var: &str,
    var_dim: &str,
    body: &Expr,
) -> fmt::Result {
    write!(f, "({name} {var}:{var_dim} . ")?;
    write_expr(body, f)?;
    write!(f, ")")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::MatrixType;

    #[test]
    fn displays_core_operators() {
        let e = Expr::var("A").t().mm(Expr::var("B")).add(Expr::lit(1.0));
        assert_eq!(e.to_string(), "((transpose(A) * B) + (const 1))");
    }

    #[test]
    fn displays_quantifiers_and_loops() {
        let s = Expr::sum("v", "a", Expr::var("v"));
        assert_eq!(s.to_string(), "(sum v:a . v)");
        let h = Expr::hprod("v", "a", Expr::var("v"));
        assert_eq!(h.to_string(), "(hprod v:a . v)");
        let p = Expr::mprod("v", "a", Expr::var("A"));
        assert_eq!(p.to_string(), "(mprod v:a . A)");
        let f = Expr::for_init(
            "v",
            "a",
            "X",
            MatrixType::square("a"),
            Expr::var("A"),
            Expr::var("X"),
        );
        assert_eq!(f.to_string(), "(for v:a, X:[a,a] = A . X)");
        let f0 = Expr::for_loop("v", "a", "X", MatrixType::vector("a"), Expr::var("X"));
        assert_eq!(f0.to_string(), "(for v:a, X:[a,1] . X)");
    }

    #[test]
    fn displays_pointwise_application_and_let() {
        let e = Expr::apply("div", vec![Expr::var("A"), Expr::var("B")]);
        assert_eq!(e.to_string(), "apply[div](A, B)");
        let l = Expr::let_in("T", Expr::var("A"), Expr::var("T"));
        assert_eq!(l.to_string(), "(let T = A in T)");
        let sc = Expr::lit(2.0).smul(Expr::var("A").had(Expr::var("B")));
        assert_eq!(sc.to_string(), "((const 2) .* (A ** B))");
        assert_eq!(Expr::var("A").ones().diag().to_string(), "diag(ones(A))");
    }
}
