//! Pointwise function registries: the parameter `F` of `MATLANG[F]`.
//!
//! The paper parameterizes every language by a collection `F` of functions
//! `f : K^k → K` applied pointwise.  Expressions refer to functions *by name*
//! ([`crate::Expr::Apply`]); at evaluation time the names are resolved in a
//! [`FunctionRegistry`].  The registry for ordered fields ships the two
//! functions the paper singles out:
//!
//! * `f_/` (division, name `"div"`) — needed for LU decomposition and
//!   Csanky's algorithm (Propositions 4.1 and 4.3),
//! * `f_{>0}` (positivity test, name `"gt0"`) — needed for pivoting and for
//!   the prod-MATLANG transitive closure (Proposition 4.2, Section 6.3).

use matlang_semiring::{OrderedField, Semiring};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A pointwise function over semiring values.
pub type PointwiseFn<K> = Arc<dyn Fn(&[K]) -> K + Send + Sync>;

/// A named collection of pointwise functions.
#[derive(Clone)]
pub struct FunctionRegistry<K> {
    functions: HashMap<String, PointwiseFn<K>>,
}

impl<K: Semiring> Default for FunctionRegistry<K> {
    fn default() -> Self {
        FunctionRegistry {
            functions: HashMap::new(),
        }
    }
}

impl<K: Semiring> fmt::Debug for FunctionRegistry<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<&String> = self.functions.keys().collect();
        names.sort();
        f.debug_struct("FunctionRegistry")
            .field("functions", &names)
            .finish()
    }
}

impl<K: Semiring> FunctionRegistry<K> {
    /// The empty registry: `MATLANG[∅]`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a function under a name, replacing any previous binding.
    pub fn register<F>(&mut self, name: impl Into<String>, f: F)
    where
        F: Fn(&[K]) -> K + Send + Sync + 'static,
    {
        self.functions.insert(name.into(), Arc::new(f));
    }

    /// Builder-style [`FunctionRegistry::register`].
    pub fn with<F>(mut self, name: impl Into<String>, f: F) -> Self
    where
        F: Fn(&[K]) -> K + Send + Sync + 'static,
    {
        self.register(name, f);
        self
    }

    /// Looks up a function by name.
    pub fn get(&self, name: &str) -> Option<&PointwiseFn<K>> {
        self.functions.get(name)
    }

    /// Whether a function with this name is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.functions.contains_key(name)
    }

    /// The registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.functions.keys().cloned().collect();
        names.sort();
        names
    }

    /// Registers the semiring-generic k-ary product `f_⊙` and sum `f_⊕`
    /// functions of Appendix A.2 (they do not add expressive power, Lemma
    /// A.1, but are convenient).
    pub fn with_semiring_ops(mut self) -> Self {
        self.register("mul", |args: &[K]| K::product(args.iter().cloned()));
        self.register("add", |args: &[K]| K::sum(args.iter().cloned()));
        self
    }
}

impl<K: OrderedField> FunctionRegistry<K> {
    /// The registry `{f_/, f_{>0}}` of the paper plus the generic `f_⊙`/`f_⊕`:
    /// everything needed by the Section 4 algorithms.
    pub fn standard_field() -> Self {
        let mut reg = FunctionRegistry::new().with_semiring_ops();
        reg.register("div", |args: &[K]| {
            // f_/(x, y) = x / y.  Division by zero yields 0; the paper's
            // expressions guard every division so the guard value is never
            // observed (see Appendix C.2's modified `reduce`).
            match args {
                [x, y] => x.div(y).unwrap_or_else(K::zero),
                _ => K::zero(),
            }
        });
        reg.register("gt0", |args: &[K]| {
            // f_{>0}(x) = 1 if x > 0 else 0.
            args.first().map(|x| x.gt_zero()).unwrap_or_else(K::zero)
        });
        reg.register("nonzero", |args: &[K]| {
            // 1 if x ≠ 0 else 0 — a convenience used to normalize boolean-ish
            // results; definable as f_{>0}(x²) over ordered fields.
            match args.first() {
                Some(x) if !x.is_zero() => K::one(),
                _ => K::zero(),
            }
        });
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matlang_semiring::{Nat, Real};

    #[test]
    fn empty_registry_has_no_functions() {
        let reg: FunctionRegistry<Real> = FunctionRegistry::new();
        assert!(!reg.contains("div"));
        assert!(reg.get("div").is_none());
        assert!(reg.names().is_empty());
    }

    #[test]
    fn register_and_call() {
        let mut reg: FunctionRegistry<Real> = FunctionRegistry::new();
        reg.register("halve", |args: &[Real]| Real(args[0].0 / 2.0));
        let f = reg.get("halve").unwrap();
        assert_eq!(f(&[Real(4.0)]), Real(2.0));
        assert!(reg.contains("halve"));
    }

    #[test]
    fn standard_field_registry_contains_paper_functions() {
        let reg: FunctionRegistry<Real> = FunctionRegistry::standard_field();
        assert_eq!(reg.names(), vec!["add", "div", "gt0", "mul", "nonzero"]);

        let div = reg.get("div").unwrap();
        assert_eq!(div(&[Real(6.0), Real(3.0)]), Real(2.0));
        assert_eq!(div(&[Real(6.0), Real(0.0)]), Real(0.0));

        let gt0 = reg.get("gt0").unwrap();
        assert_eq!(gt0(&[Real(0.5)]), Real(1.0));
        assert_eq!(gt0(&[Real(-0.5)]), Real(0.0));
        assert_eq!(gt0(&[Real(0.0)]), Real(0.0));

        let nonzero = reg.get("nonzero").unwrap();
        assert_eq!(nonzero(&[Real(-3.0)]), Real(1.0));
        assert_eq!(nonzero(&[Real(0.0)]), Real(0.0));
    }

    #[test]
    fn semiring_ops_work_over_any_semiring() {
        let reg: FunctionRegistry<Nat> = FunctionRegistry::new().with_semiring_ops();
        let mul = reg.get("mul").unwrap();
        let add = reg.get("add").unwrap();
        assert_eq!(mul(&[Nat(2), Nat(3), Nat(4)]), Nat(24));
        assert_eq!(add(&[Nat(2), Nat(3), Nat(4)]), Nat(9));
        assert_eq!(mul(&[]), Nat(1));
        assert_eq!(add(&[]), Nat(0));
    }

    #[test]
    fn with_builder_chains() {
        let reg: FunctionRegistry<Real> = FunctionRegistry::new()
            .with("id", |args: &[Real]| args[0])
            .with("zero", |_: &[Real]| Real(0.0));
        assert_eq!(reg.names(), vec!["id", "zero"]);
    }

    #[test]
    fn debug_lists_names() {
        let reg: FunctionRegistry<Real> = FunctionRegistry::standard_field();
        let dbg = format!("{reg:?}");
        assert!(dbg.contains("div"));
        assert!(dbg.contains("gt0"));
    }
}
