//! The MATLANG family of matrix query languages.
//!
//! This crate implements the languages studied in *"Expressive power of
//! linear algebra query languages"* (Geerts, Muñoz, Riveros, Vrgoč, PODS
//! 2021):
//!
//! * **MATLANG** (Section 2): matrix variables, transpose, the one-vector
//!   `1(e)`, diagonalization `diag(e)`, matrix product, matrix addition,
//!   scalar multiplication and pointwise function application.
//! * **for-MATLANG** (Section 3): MATLANG plus canonical for-loops
//!   `for v, X. e` (with optional initialization `for v, X = e₀. e`).
//! * **sum-MATLANG**, **FO-MATLANG** and **prod-MATLANG** (Section 6): the
//!   fragments in which loops may only perform additive updates (`Σv. e`),
//!   Hadamard-product updates (`Π∘v. e`) or matrix-product updates
//!   (`Πv. e`).
//!
//! The crate provides:
//!
//! * the expression AST ([`Expr`]) together with ergonomic builders,
//! * schemas, size symbols and instances ([`Schema`], [`Dim`], [`Instance`]),
//! * the paper's typing rules ([`typecheck()`]),
//! * syntactic fragment classification ([`fragment`]),
//! * pointwise-function registries ([`FunctionRegistry`]),
//! * a semiring-generic, **backend-aware** evaluator ([`evaluate`])
//!   implementing the semantics of Sections 2, 3 and 6 — generic over the
//!   [`matlang_matrix::MatrixStorage`] representation, so the same
//!   expression evaluates over dense, CSR-sparse or adaptive
//!   ([`SparseInstance`]) matrices with identical results, and
//! * desugarings of the derived operators into core for-MATLANG
//!   ([`desugar`]), mirroring Examples 3.1 and 3.2, and
//! * the shared evaluator test corpus ([`corpus`]) that every evaluation
//!   path — dense, sparse-adaptive, and the `matlang_engine`
//!   planner/executor — is checked against.

pub mod corpus;
pub mod desugar;
pub mod display;
pub mod eval;
pub mod expr;
pub mod fragment;
pub mod functions;
pub mod rewrite;
pub mod schema;
pub mod typecheck;

pub use eval::{evaluate, evaluate_with_env, EvalError};
pub use expr::Expr;
pub use fragment::{fragment_of, Fragment};
pub use functions::{FunctionRegistry, PointwiseFn};
pub use rewrite::simplify;
pub use schema::{Dim, Instance, MatrixType, Schema};
pub use typecheck::{typecheck, TypeError};

/// An instance whose matrices use the adaptive sparse/dense representation
/// ([`matlang_matrix::MatrixRepr`]).  Evaluating with it turns every
/// operation into a backend-aware one: results are stored sparse or dense
/// according to their density.
pub type SparseInstance<K> = Instance<K, matlang_matrix::MatrixRepr<K>>;

/// Result alias for evaluation.
pub type EvalResult<T> = std::result::Result<T, EvalError>;

/// Result alias for type checking.
pub type TypeResult<T> = std::result::Result<T, TypeError>;
