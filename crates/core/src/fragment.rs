//! Syntactic fragment classification (Figure 1 of the paper).
//!
//! The paper's fragments form a chain
//!
//! ```text
//! MATLANG ⊊ sum-MATLANG ⊆ FO-MATLANG ⊆ prod-MATLANG ⊆ for-MATLANG
//! ```
//!
//! (sum ⊊ FO by Example 6.6, FO ⊆ prod by Proposition 6.8, prod ⊊ for because
//! general `for` may overwrite its accumulator arbitrarily).  Classification
//! here is purely syntactic: an expression is placed in the *smallest*
//! fragment whose grammar generates it.

use crate::expr::Expr;
use std::fmt;

/// The language fragments of Figure 1, ordered by syntactic inclusion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Fragment {
    /// Plain MATLANG (Section 2): no loops at all.
    Matlang,
    /// sum-MATLANG (Section 6.1): loops only via the additive quantifier `Σ`.
    SumMatlang,
    /// FO-MATLANG (Section 6.2): `Σ` plus the Hadamard quantifier `Π∘` and
    /// the pointwise product `∘`.
    FoMatlang,
    /// prod-MATLANG (Section 6.3): `Σ`, `Π∘` and the matrix-product
    /// quantifier `Π`.
    ProdMatlang,
    /// Full for-MATLANG (Section 3): unrestricted canonical for-loops.
    ForMatlang,
}

impl Fragment {
    /// Whether `self` is (syntactically) included in `other`.
    pub fn is_subfragment_of(&self, other: &Fragment) -> bool {
        self <= other
    }

    /// All fragments, smallest to largest.
    pub fn all() -> [Fragment; 5] {
        [
            Fragment::Matlang,
            Fragment::SumMatlang,
            Fragment::FoMatlang,
            Fragment::ProdMatlang,
            Fragment::ForMatlang,
        ]
    }
}

impl fmt::Display for Fragment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Fragment::Matlang => "MATLANG",
            Fragment::SumMatlang => "sum-MATLANG",
            Fragment::FoMatlang => "FO-MATLANG",
            Fragment::ProdMatlang => "prod-MATLANG",
            Fragment::ForMatlang => "for-MATLANG",
        };
        write!(f, "{name}")
    }
}

/// Feature flags collected from an expression.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
struct Features {
    uses_for: bool,
    uses_mprod: bool,
    uses_hprod: bool,
    uses_hadamard: bool,
    uses_sum: bool,
}

fn collect(expr: &Expr, features: &mut Features) {
    match expr {
        Expr::Var(_) | Expr::Const(_) => {}
        Expr::Transpose(e) | Expr::Ones(e) | Expr::Diag(e) => collect(e, features),
        Expr::MatMul(a, b) | Expr::Add(a, b) | Expr::ScalarMul(a, b) => {
            collect(a, features);
            collect(b, features);
        }
        Expr::Hadamard(a, b) => {
            features.uses_hadamard = true;
            collect(a, features);
            collect(b, features);
        }
        Expr::Apply(_, args) => {
            for a in args {
                collect(a, features);
            }
        }
        Expr::Let { value, body, .. } => {
            collect(value, features);
            collect(body, features);
        }
        Expr::For { init, body, .. } => {
            features.uses_for = true;
            if let Some(init) = init {
                collect(init, features);
            }
            collect(body, features);
        }
        Expr::Sum { body, .. } => {
            features.uses_sum = true;
            collect(body, features);
        }
        Expr::HProd { body, .. } => {
            features.uses_hprod = true;
            collect(body, features);
        }
        Expr::MProd { body, .. } => {
            features.uses_mprod = true;
            collect(body, features);
        }
    }
}

/// The smallest fragment that syntactically contains `expr`.
pub fn fragment_of(expr: &Expr) -> Fragment {
    let mut features = Features::default();
    collect(expr, &mut features);
    if features.uses_for {
        Fragment::ForMatlang
    } else if features.uses_mprod {
        Fragment::ProdMatlang
    } else if features.uses_hprod || features.uses_hadamard {
        Fragment::FoMatlang
    } else if features.uses_sum {
        Fragment::SumMatlang
    } else {
        Fragment::Matlang
    }
}

/// Whether `expr` belongs (syntactically) to the given fragment.
pub fn is_in_fragment(expr: &Expr, fragment: Fragment) -> bool {
    fragment_of(expr).is_subfragment_of(&fragment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::MatrixType;

    #[test]
    fn fragment_ordering_matches_figure_1() {
        use Fragment::*;
        assert!(Matlang < SumMatlang);
        assert!(SumMatlang < FoMatlang);
        assert!(FoMatlang < ProdMatlang);
        assert!(ProdMatlang < ForMatlang);
        assert!(Matlang.is_subfragment_of(&ForMatlang));
        assert!(!ForMatlang.is_subfragment_of(&Matlang));
        assert_eq!(Fragment::all().len(), 5);
    }

    #[test]
    fn plain_expressions_are_matlang() {
        let e = Expr::var("A").t().mm(Expr::var("A")).add(Expr::var("B"));
        assert_eq!(fragment_of(&e), Fragment::Matlang);
        assert!(is_in_fragment(&e, Fragment::SumMatlang));
    }

    #[test]
    fn sum_expressions_are_sum_matlang() {
        let e = Expr::sum("v", "a", Expr::var("v").mm(Expr::var("v").t()));
        assert_eq!(fragment_of(&e), Fragment::SumMatlang);
        assert!(!is_in_fragment(&e, Fragment::Matlang));
    }

    #[test]
    fn hadamard_and_hprod_are_fo_matlang() {
        let dp = Expr::hprod(
            "v",
            "a",
            Expr::var("v").t().mm(Expr::var("A")).mm(Expr::var("v")),
        );
        assert_eq!(fragment_of(&dp), Fragment::FoMatlang);
        let had = Expr::var("A").had(Expr::var("B"));
        assert_eq!(fragment_of(&had), Fragment::FoMatlang);
    }

    #[test]
    fn mprod_is_prod_matlang() {
        let e = Expr::mprod("v", "a", Expr::var("A").add(Expr::var("B")));
        assert_eq!(fragment_of(&e), Fragment::ProdMatlang);
        assert!(is_in_fragment(&e, Fragment::ForMatlang));
        assert!(!is_in_fragment(&e, Fragment::FoMatlang));
    }

    #[test]
    fn for_loops_are_for_matlang() {
        let e = Expr::for_loop("v", "a", "X", MatrixType::vector("a"), Expr::var("v"));
        assert_eq!(fragment_of(&e), Fragment::ForMatlang);
    }

    #[test]
    fn nested_features_pick_the_largest_fragment() {
        let e = Expr::sum(
            "v",
            "a",
            Expr::mprod("w", "a", Expr::var("A")).had(Expr::var("B")),
        );
        assert_eq!(fragment_of(&e), Fragment::ProdMatlang);
    }

    #[test]
    fn features_inside_let_and_init_are_detected() {
        let e = Expr::let_in("T", Expr::sum("v", "a", Expr::var("v")), Expr::var("T"));
        assert_eq!(fragment_of(&e), Fragment::SumMatlang);
        let f = Expr::for_init(
            "v",
            "a",
            "X",
            MatrixType::square("a"),
            Expr::var("A"),
            Expr::var("X"),
        );
        assert_eq!(fragment_of(&f), Fragment::ForMatlang);
    }

    #[test]
    fn display_names() {
        assert_eq!(Fragment::Matlang.to_string(), "MATLANG");
        assert_eq!(Fragment::SumMatlang.to_string(), "sum-MATLANG");
        assert_eq!(Fragment::FoMatlang.to_string(), "FO-MATLANG");
        assert_eq!(Fragment::ProdMatlang.to_string(), "prod-MATLANG");
        assert_eq!(Fragment::ForMatlang.to_string(), "for-MATLANG");
    }
}
