//! The shared evaluator test corpus.
//!
//! Several suites need to run "every operator of the language, the paper's
//! worked examples, and the usual error cases" through an evaluator and
//! compare outcomes: the dense↔sparse backend-parity tests in this crate
//! and the planned-vs-naive parity tests in `matlang_engine`.  Keeping the
//! corpus here — next to the evaluator whose semantics it pins down —
//! means every new evaluation path is automatically checked against the
//! same expressions.
//!
//! The corpus assumes an instance with one square matrix variable `A` over
//! size symbol `a`, and a registry containing the paper's `div` and `gt0`
//! functions (e.g. [`crate::FunctionRegistry::standard_field`]).

use crate::expr::Expr;
use crate::schema::MatrixType;

/// Every operator of the language exercised at least once, the worked
/// examples of Sections 3 and 6, plus [`error_corpus`].  Expressions refer
/// to the square matrix variable `A` over size symbol `a`.
pub fn operator_corpus() -> Vec<Expr> {
    let mut out = vec![
        Expr::var("A"),
        Expr::lit(2.5),
        Expr::var("A").t(),
        Expr::var("A").add(Expr::var("A")),
        Expr::var("A").mm(Expr::var("A")),
        Expr::var("A").ones(),
        Expr::var("A").ones().diag(),
        Expr::lit(2.0).smul(Expr::var("A")),
        Expr::var("A").had(Expr::var("A")),
        Expr::apply("gt0", vec![Expr::var("A")]),
        Expr::apply("div", vec![Expr::lit(6.0), Expr::lit(3.0)]),
        Expr::let_in(
            "T",
            Expr::var("A").mm(Expr::var("A")),
            Expr::var("T").add(Expr::var("T")),
        ),
        // Example 3.1: the one-vector via a for loop.
        Expr::for_loop(
            "v",
            "a",
            "X",
            MatrixType::vector("a"),
            Expr::var("X").add(Expr::var("v")),
        ),
        // Section 3.2: e_max ends with the last canonical vector.
        Expr::for_loop("v", "a", "X", MatrixType::vector("a"), Expr::var("v")),
        // Example 3.2: diag via a for loop.
        Expr::for_loop(
            "v",
            "a",
            "X",
            MatrixType::square("a"),
            Expr::var("X").add(
                Expr::var("v")
                    .t()
                    .mm(Expr::var("A").ones())
                    .smul(Expr::var("v").mm(Expr::var("v").t())),
            ),
        ),
        // Quantifier corpus: Σ / Π∘ / Π.
        Expr::sum("v", "a", Expr::var("v").mm(Expr::var("v").t())),
        Expr::hprod(
            "v",
            "a",
            Expr::var("v").t().mm(Expr::var("A")).mm(Expr::var("v")),
        ),
        Expr::mprod("v", "a", Expr::var("A")),
    ];
    out.extend(error_corpus());
    out
}

/// Ill-formed expressions that must fail — with the *same* error — on
/// every evaluation path: unknown variable, non-scalar scalar
/// multiplication, unknown loop dimension, unregistered function.
pub fn error_corpus() -> Vec<Expr> {
    vec![
        Expr::var("Z"),
        Expr::var("A").smul(Expr::var("A")),
        Expr::sum("v", "missing", Expr::var("v")),
        Expr::apply("nope", vec![Expr::var("A")]),
    ]
}

/// The 4-clique query of Example 3.3 (shortened chain): non-zero over ℝ
/// iff the graph in `A` has a 4-clique.  Heavily nested Σ-loops with
/// loop-invariant inner products — the stress test for planners.
pub fn four_clique_corpus_expr() -> Expr {
    let g = |u: &str, v: &str| Expr::lit(1.0).minus(Expr::var(u).t().mm(Expr::var(v)));
    let adjacency = |a: &str, b: &str| Expr::var(a).t().mm(Expr::var("A")).mm(Expr::var(b));
    let body = adjacency("u", "v")
        .mm(adjacency("v", "w"))
        .mm(adjacency("w", "x"))
        .mm(g("u", "v").mm(g("v", "w")).mm(g("w", "x")));
    Expr::sum(
        "u",
        "a",
        Expr::sum("v", "a", Expr::sum("w", "a", Expr::sum("x", "a", body))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::fragment_of;

    #[test]
    fn corpus_is_nonempty_and_contains_error_cases() {
        let all = operator_corpus();
        let errors = error_corpus();
        assert!(all.len() > errors.len());
        for e in &errors {
            assert!(all.contains(e));
        }
    }

    #[test]
    fn four_clique_expr_is_sum_matlang() {
        use crate::fragment::Fragment;
        assert_eq!(
            fragment_of(&four_clique_corpus_expr()),
            Fragment::SumMatlang
        );
        assert_eq!(four_clique_corpus_expr().loop_depth(), 4);
    }
}
