//! Schemas, size symbols, matrix types and instances.
//!
//! A MATLANG schema `S = (M, size)` assigns a pair of *size symbols* to every
//! matrix variable; an instance `I = (D, mat)` assigns a concrete dimension
//! to every size symbol and a concrete matrix to every variable (Section 2).

use matlang_matrix::{Matrix, MatrixStorage};
use matlang_semiring::Semiring;
use std::collections::BTreeMap;
use std::fmt;
use std::marker::PhantomData;

/// A size symbol: either the distinguished symbol `1` or a named symbol such
/// as `α`, `β`, `γ`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dim {
    /// The constant dimension `1`.
    One,
    /// A named size symbol whose value is supplied by the instance.
    Sym(String),
}

impl Dim {
    /// A named size symbol.
    pub fn sym(name: impl Into<String>) -> Dim {
        Dim::Sym(name.into())
    }

    /// Whether this is the constant dimension `1`.
    pub fn is_one(&self) -> bool {
        matches!(self, Dim::One)
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dim::One => write!(f, "1"),
            Dim::Sym(s) => write!(f, "{s}"),
        }
    }
}

/// The type of an expression: a pair of size symbols `(α, β)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MatrixType {
    /// Row size symbol.
    pub rows: Dim,
    /// Column size symbol.
    pub cols: Dim,
}

impl MatrixType {
    /// A matrix type with the given row and column symbols.
    pub fn new(rows: Dim, cols: Dim) -> MatrixType {
        MatrixType { rows, cols }
    }

    /// The scalar type `(1, 1)`.
    pub fn scalar() -> MatrixType {
        MatrixType::new(Dim::One, Dim::One)
    }

    /// A square matrix type `(α, α)`.
    pub fn square(sym: impl Into<String>) -> MatrixType {
        let d = Dim::sym(sym);
        MatrixType::new(d.clone(), d)
    }

    /// A column-vector type `(α, 1)`.
    pub fn vector(sym: impl Into<String>) -> MatrixType {
        MatrixType::new(Dim::sym(sym), Dim::One)
    }

    /// A row-vector type `(1, α)`.
    pub fn row_vector(sym: impl Into<String>) -> MatrixType {
        MatrixType::new(Dim::One, Dim::sym(sym))
    }

    /// The transposed type `(β, α)`.
    pub fn transposed(&self) -> MatrixType {
        MatrixType::new(self.cols.clone(), self.rows.clone())
    }

    /// Whether this is the scalar type `(1, 1)`.
    pub fn is_scalar(&self) -> bool {
        self.rows.is_one() && self.cols.is_one()
    }

    /// Whether this is a column-vector type `(α, 1)` (including `(1, 1)`).
    pub fn is_vector(&self) -> bool {
        self.cols.is_one()
    }
}

impl fmt::Display for MatrixType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.rows, self.cols)
    }
}

/// A MATLANG schema: a finite map from matrix-variable names to types.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Schema {
    vars: BTreeMap<String, MatrixType>,
}

impl Schema {
    /// The empty schema.
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Builder-style variable declaration.
    pub fn with_var(mut self, name: impl Into<String>, ty: MatrixType) -> Schema {
        self.vars.insert(name.into(), ty);
        self
    }

    /// Declares (or overwrites) a variable.
    pub fn declare(&mut self, name: impl Into<String>, ty: MatrixType) {
        self.vars.insert(name.into(), ty);
    }

    /// The type of a variable, if declared.
    pub fn var_type(&self, name: &str) -> Option<&MatrixType> {
        self.vars.get(name)
    }

    /// Iterate over declared variables in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &MatrixType)> {
        self.vars.iter()
    }

    /// Number of declared variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether no variables are declared.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }
}

/// A MATLANG instance `I = (D, mat)`: concrete dimensions for size symbols
/// and concrete matrices for matrix variables.
///
/// The instance is generic over the matrix representation `M` (any
/// [`MatrixStorage`] backend); it defaults to the dense [`Matrix`], so
/// existing code written against `Instance<K>` keeps its meaning.  Use
/// `Instance<K, MatrixRepr<K>>` (alias [`crate::SparseInstance`]) to
/// evaluate over the adaptive sparse/dense backend.
#[derive(Debug, Clone)]
pub struct Instance<K: Semiring, M: MatrixStorage<Elem = K> = Matrix<K>> {
    dims: BTreeMap<String, usize>,
    mats: BTreeMap<String, M>,
    _semiring: PhantomData<K>,
}

impl<K: Semiring, M: MatrixStorage<Elem = K>> Default for Instance<K, M> {
    fn default() -> Self {
        Instance {
            dims: BTreeMap::new(),
            mats: BTreeMap::new(),
            _semiring: PhantomData,
        }
    }
}

impl<K: Semiring, M: MatrixStorage<Elem = K>> Instance<K, M> {
    /// An empty instance.
    pub fn new() -> Instance<K, M> {
        Instance::default()
    }

    /// Builder-style size-symbol assignment `D(sym) = n`.
    pub fn with_dim(mut self, sym: impl Into<String>, n: usize) -> Instance<K, M> {
        self.dims.insert(sym.into(), n);
        self
    }

    /// Builder-style matrix assignment `mat(V) = m`.
    pub fn with_matrix(mut self, var: impl Into<String>, m: M) -> Instance<K, M> {
        self.mats.insert(var.into(), m);
        self
    }

    /// Assign a size symbol.
    pub fn set_dim(&mut self, sym: impl Into<String>, n: usize) {
        self.dims.insert(sym.into(), n);
    }

    /// Assign a matrix to a variable.
    pub fn set_matrix(&mut self, var: impl Into<String>, m: M) {
        self.mats.insert(var.into(), m);
    }

    /// The value of a size symbol; `Dim::One` always resolves to 1.
    pub fn dim_value(&self, dim: &Dim) -> Option<usize> {
        match dim {
            Dim::One => Some(1),
            Dim::Sym(s) => self.dims.get(s).copied(),
        }
    }

    /// The concrete shape denoted by a matrix type under this instance.
    pub fn shape_of(&self, ty: &MatrixType) -> Option<(usize, usize)> {
        Some((self.dim_value(&ty.rows)?, self.dim_value(&ty.cols)?))
    }

    /// The matrix assigned to a variable.
    pub fn matrix(&self, var: &str) -> Option<&M> {
        self.mats.get(var)
    }

    /// Mutable access to the matrix assigned to a variable — the hook for
    /// **in-place incremental updates** (point mutations via
    /// [`MatrixStorage::set_entry`]) as opposed to re-assigning a whole
    /// matrix with [`Instance::set_matrix`].  Callers holding derived state
    /// (plan caches, statistics) are responsible for invalidating it.
    pub fn matrix_mut(&mut self, var: &str) -> Option<&mut M> {
        self.mats.get_mut(var)
    }

    /// Iterate over assigned matrices in name order.
    pub fn matrices(&self) -> impl Iterator<Item = (&String, &M)> {
        self.mats.iter()
    }

    /// Iterate over assigned dimensions in name order.
    pub fn dims(&self) -> impl Iterator<Item = (&String, usize)> {
        self.dims.iter().map(|(k, v)| (k, *v))
    }

    /// Checks that every declared variable of `schema` is assigned a matrix
    /// whose shape matches its declared type.  Returns the offending variable
    /// name on failure.
    pub fn conforms_to(&self, schema: &Schema) -> Result<(), String> {
        for (name, ty) in schema.iter() {
            let expected = self
                .shape_of(ty)
                .ok_or_else(|| format!("size symbol of {name} has no assigned dimension"))?;
            let m = self
                .matrix(name)
                .ok_or_else(|| format!("variable {name} has no assigned matrix"))?;
            if m.shape() != expected {
                return Err(format!(
                    "variable {name} has shape {:?} but its type {ty} requires {:?}",
                    m.shape(),
                    expected
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matlang_semiring::Real;

    #[test]
    fn dims_display_and_predicates() {
        assert_eq!(Dim::One.to_string(), "1");
        assert_eq!(Dim::sym("α").to_string(), "α");
        assert!(Dim::One.is_one());
        assert!(!Dim::sym("α").is_one());
    }

    #[test]
    fn matrix_type_helpers() {
        let sq = MatrixType::square("a");
        assert_eq!(sq.rows, sq.cols);
        assert!(!sq.is_scalar());
        assert!(MatrixType::scalar().is_scalar());
        assert!(MatrixType::vector("a").is_vector());
        assert!(!MatrixType::row_vector("a").is_vector());
        assert_eq!(
            MatrixType::vector("a").transposed(),
            MatrixType::row_vector("a")
        );
        assert_eq!(sq.to_string(), "(a, a)");
    }

    #[test]
    fn schema_declaration_and_lookup() {
        let s = Schema::new()
            .with_var("A", MatrixType::square("a"))
            .with_var("v", MatrixType::vector("a"));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.var_type("A"), Some(&MatrixType::square("a")));
        assert_eq!(s.var_type("missing"), None);
        let names: Vec<_> = s.iter().map(|(n, _)| n.clone()).collect();
        assert_eq!(names, vec!["A".to_string(), "v".to_string()]);
    }

    #[test]
    fn instance_dim_resolution() {
        let inst: Instance<Real> = Instance::new().with_dim("a", 4);
        assert_eq!(inst.dim_value(&Dim::One), Some(1));
        assert_eq!(inst.dim_value(&Dim::sym("a")), Some(4));
        assert_eq!(inst.dim_value(&Dim::sym("b")), None);
        assert_eq!(inst.shape_of(&MatrixType::square("a")), Some((4, 4)));
        assert_eq!(inst.shape_of(&MatrixType::vector("b")), None);
    }

    #[test]
    fn instance_conformance_checks_shapes() {
        let schema = Schema::new().with_var("A", MatrixType::square("a"));
        let good: Instance<Real> = Instance::new()
            .with_dim("a", 2)
            .with_matrix("A", Matrix::identity(2));
        assert!(good.conforms_to(&schema).is_ok());

        let wrong_shape: Instance<Real> = Instance::new()
            .with_dim("a", 2)
            .with_matrix("A", Matrix::zeros(2, 3));
        assert!(wrong_shape.conforms_to(&schema).is_err());

        let missing_matrix: Instance<Real> = Instance::new().with_dim("a", 2);
        assert!(missing_matrix.conforms_to(&schema).is_err());

        let missing_dim: Instance<Real> = Instance::new().with_matrix("A", Matrix::identity(2));
        assert!(missing_dim.conforms_to(&schema).is_err());
    }

    #[test]
    fn instance_iterators() {
        let inst: Instance<Real> = Instance::new()
            .with_dim("a", 3)
            .with_matrix("A", Matrix::identity(3))
            .with_matrix("B", Matrix::zeros(3, 3));
        assert_eq!(inst.dims().count(), 1);
        assert_eq!(inst.matrices().count(), 2);
        assert!(inst.matrix("A").is_some());
        assert!(inst.matrix("C").is_none());
    }
}
