//! The semiring-generic evaluator: the semantics `⟦e⟧(I)` of Sections 2, 3
//! and 6.

use crate::expr::Expr;
use crate::functions::FunctionRegistry;
use crate::schema::{Dim, Instance};
use matlang_matrix::{MatrixError, MatrixStorage};
use matlang_semiring::Semiring;
use std::collections::HashMap;
use std::fmt;

/// Errors raised during evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// A matrix variable has no assigned matrix (neither in the instance nor
    /// bound by an enclosing loop/let).
    UnknownVariable {
        /// The unresolved name.
        name: String,
    },
    /// A pointwise function name is not present in the registry.
    UnknownFunction {
        /// The unresolved function name.
        name: String,
    },
    /// A size symbol used by a loop has no assigned dimension.
    UnknownDimension {
        /// The unresolved size symbol.
        symbol: String,
    },
    /// A loop iterates over a dimension assigned the value zero; the result
    /// shape would be ill-defined for Σ/Π∘/Π.
    EmptyIteration {
        /// The offending size symbol.
        symbol: String,
    },
    /// The left operand of scalar multiplication did not evaluate to a `1×1`
    /// matrix.
    NotAScalar {
        /// The shape that was produced instead.
        shape: (usize, usize),
    },
    /// A loop body produced a matrix whose shape differs from the accumulator.
    LoopShapeMismatch {
        /// The accumulator variable.
        acc: String,
        /// The accumulator shape.
        expected: (usize, usize),
        /// The body's shape.
        found: (usize, usize),
    },
    /// An underlying matrix operation failed (shape mismatch etc.).
    Matrix(MatrixError),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownVariable { name } => write!(f, "unbound matrix variable `{name}`"),
            EvalError::UnknownFunction { name } => {
                write!(f, "pointwise function `{name}` is not registered")
            }
            EvalError::UnknownDimension { symbol } => {
                write!(f, "size symbol `{symbol}` has no assigned dimension")
            }
            EvalError::EmptyIteration { symbol } => {
                write!(
                    f,
                    "size symbol `{symbol}` is assigned 0; loops require dimension ≥ 1"
                )
            }
            EvalError::NotAScalar { shape } => write!(
                f,
                "scalar multiplication expects a 1x1 left operand, got {}x{}",
                shape.0, shape.1
            ),
            EvalError::LoopShapeMismatch {
                acc,
                expected,
                found,
            } => write!(
                f,
                "loop body produced shape {}x{} but accumulator `{acc}` has shape {}x{}",
                found.0, found.1, expected.0, expected.1
            ),
            EvalError::Matrix(e) => write!(f, "matrix operation failed: {e}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<MatrixError> for EvalError {
    fn from(e: MatrixError) -> Self {
        EvalError::Matrix(e)
    }
}

/// Evaluates `expr` over `instance`, resolving pointwise functions in
/// `registry`.  This is `⟦expr⟧(instance)`.
///
/// The evaluator is generic over the matrix representation `M`: pass an
/// `Instance<K>` (dense matrices, the default) to get dense evaluation, or
/// an `Instance<K, MatrixRepr<K>>` to evaluate with backend-aware adaptive
/// sparse/dense storage — the semantics are identical.
pub fn evaluate<K: Semiring, M: MatrixStorage<Elem = K>>(
    expr: &Expr,
    instance: &Instance<K, M>,
    registry: &FunctionRegistry<K>,
) -> Result<M, EvalError> {
    evaluate_with_env(expr, instance, registry, &HashMap::new())
}

/// Evaluates `expr` with an extra layer of local variable bindings, which
/// shadow the instance's matrices.  Used internally for loop variables and
/// exposed for callers that want to pre-bind canonical vectors (e.g. the
/// RA⁺_K and WL translations evaluate open expressions this way).
pub fn evaluate_with_env<K: Semiring, M: MatrixStorage<Elem = K>>(
    expr: &Expr,
    instance: &Instance<K, M>,
    registry: &FunctionRegistry<K>,
    env: &HashMap<String, M>,
) -> Result<M, EvalError> {
    let mut env = env.clone();
    eval(expr, instance, registry, &mut env)
}

fn lookup<K: Semiring, M: MatrixStorage<Elem = K>>(
    name: &str,
    instance: &Instance<K, M>,
    env: &HashMap<String, M>,
) -> Result<M, EvalError> {
    if let Some(m) = env.get(name) {
        return Ok(m.clone());
    }
    instance
        .matrix(name)
        .cloned()
        .ok_or_else(|| EvalError::UnknownVariable {
            name: name.to_string(),
        })
}

fn dim_of<K: Semiring, M: MatrixStorage<Elem = K>>(
    symbol: &str,
    instance: &Instance<K, M>,
) -> Result<usize, EvalError> {
    let n = instance
        .dim_value(&Dim::Sym(symbol.to_string()))
        .ok_or_else(|| EvalError::UnknownDimension {
            symbol: symbol.to_string(),
        })?;
    if n == 0 {
        return Err(EvalError::EmptyIteration {
            symbol: symbol.to_string(),
        });
    }
    Ok(n)
}

fn eval<K: Semiring, M: MatrixStorage<Elem = K>>(
    expr: &Expr,
    instance: &Instance<K, M>,
    registry: &FunctionRegistry<K>,
    env: &mut HashMap<String, M>,
) -> Result<M, EvalError> {
    match expr {
        Expr::Var(name) => lookup(name, instance, env),
        Expr::Const(c) => Ok(M::scalar(K::from_f64(*c))),
        Expr::Transpose(e) => Ok(eval(e, instance, registry, env)?.transpose()),
        Expr::Ones(e) => {
            let value = eval(e, instance, registry, env)?;
            Ok(M::ones_vector(value.rows()))
        }
        Expr::Diag(e) => {
            let value = eval(e, instance, registry, env)?;
            Ok(value.diag()?)
        }
        Expr::MatMul(a, b) => {
            let left = eval(a, instance, registry, env)?;
            let right = eval(b, instance, registry, env)?;
            Ok(left.matmul(&right)?)
        }
        Expr::Add(a, b) => {
            let left = eval(a, instance, registry, env)?;
            let right = eval(b, instance, registry, env)?;
            Ok(left.add(&right)?)
        }
        Expr::ScalarMul(a, b) => {
            let left = eval(a, instance, registry, env)?;
            if !left.is_scalar() {
                return Err(EvalError::NotAScalar {
                    shape: left.shape(),
                });
            }
            let scalar = left.as_scalar()?;
            let right = eval(b, instance, registry, env)?;
            Ok(right.scalar_mul(&scalar))
        }
        Expr::Hadamard(a, b) => {
            let left = eval(a, instance, registry, env)?;
            let right = eval(b, instance, registry, env)?;
            Ok(left.hadamard(&right)?)
        }
        Expr::Apply(name, args) => {
            let f = registry
                .get(name)
                .ok_or_else(|| EvalError::UnknownFunction { name: name.clone() })?
                .clone();
            let values: Vec<M> = args
                .iter()
                .map(|a| eval(a, instance, registry, env))
                .collect::<Result<_, _>>()?;
            let refs: Vec<&M> = values.iter().collect();
            Ok(M::zip_with(&refs, |entries| f(entries))?)
        }
        Expr::Let { var, value, body } => {
            let bound = eval(value, instance, registry, env)?;
            let saved = env.insert(var.clone(), bound);
            let result = eval(body, instance, registry, env);
            restore(env, var, saved);
            result
        }
        Expr::For {
            var,
            var_dim,
            acc,
            acc_type,
            init,
            body,
        } => {
            let n = dim_of(var_dim, instance)?;
            let acc_shape =
                instance
                    .shape_of(acc_type)
                    .ok_or_else(|| EvalError::UnknownDimension {
                        symbol: acc_type.rows.to_string(),
                    })?;
            let mut accumulator = match init {
                Some(init) => {
                    let value = eval(init, instance, registry, env)?;
                    if value.shape() != acc_shape {
                        return Err(EvalError::LoopShapeMismatch {
                            acc: acc.clone(),
                            expected: acc_shape,
                            found: value.shape(),
                        });
                    }
                    value
                }
                None => M::zeros(acc_shape.0, acc_shape.1),
            };
            let saved_var = env.remove(var);
            let saved_acc = env.remove(acc);
            let mut outcome = Ok(());
            for i in 0..n {
                let canonical = M::canonical(n, i)?;
                env.insert(var.clone(), canonical);
                env.insert(acc.clone(), accumulator.clone());
                match eval(body, instance, registry, env) {
                    Ok(value) => {
                        if value.shape() != acc_shape {
                            outcome = Err(EvalError::LoopShapeMismatch {
                                acc: acc.clone(),
                                expected: acc_shape,
                                found: value.shape(),
                            });
                            break;
                        }
                        accumulator = value;
                    }
                    Err(e) => {
                        outcome = Err(e);
                        break;
                    }
                }
            }
            restore_opt(env, var, saved_var);
            restore_opt(env, acc, saved_acc);
            outcome.map(|_| accumulator)
        }
        Expr::Sum { var, var_dim, body } => {
            fold_loop(instance, registry, env, var, var_dim, body, |acc, value| {
                Ok(match acc {
                    None => value,
                    Some(acc) => acc.add(&value)?,
                })
            })
        }
        Expr::HProd { var, var_dim, body } => {
            fold_loop(instance, registry, env, var, var_dim, body, |acc, value| {
                Ok(match acc {
                    None => value,
                    Some(acc) => acc.hadamard(&value)?,
                })
            })
        }
        Expr::MProd { var, var_dim, body } => {
            fold_loop(instance, registry, env, var, var_dim, body, |acc, value| {
                Ok(match acc {
                    None => value,
                    Some(acc) => acc.matmul(&value)?,
                })
            })
        }
    }
}

/// Shared iteration logic for the Σ / Π∘ / Π quantifiers: iterate the body
/// over the canonical vectors and fold the results with `combine`.  Folding
/// from the first value is equivalent to the paper's initialization with the
/// neutral element (0, the all-ones matrix and the identity, respectively).
fn fold_loop<K: Semiring, M: MatrixStorage<Elem = K>>(
    instance: &Instance<K, M>,
    registry: &FunctionRegistry<K>,
    env: &mut HashMap<String, M>,
    var: &str,
    var_dim: &str,
    body: &Expr,
    combine: impl Fn(Option<M>, M) -> Result<M, EvalError>,
) -> Result<M, EvalError> {
    let n = dim_of(var_dim, instance)?;
    let saved_var = env.remove(var);
    let mut acc: Option<M> = None;
    let mut outcome = Ok(());
    for i in 0..n {
        let canonical = M::canonical(n, i)?;
        env.insert(var.to_string(), canonical);
        match eval(body, instance, registry, env) {
            Ok(value) => match combine(acc.take(), value) {
                Ok(next) => acc = Some(next),
                Err(e) => {
                    outcome = Err(e);
                    break;
                }
            },
            Err(e) => {
                outcome = Err(e);
                break;
            }
        }
    }
    restore_opt(env, var, saved_var);
    outcome?;
    acc.ok_or(EvalError::EmptyIteration {
        symbol: var_dim.to_string(),
    })
}

fn restore<M>(env: &mut HashMap<String, M>, name: &str, saved: Option<M>) {
    match saved {
        Some(m) => {
            env.insert(name.to_string(), m);
        }
        None => {
            env.remove(name);
        }
    }
}

fn restore_opt<M>(env: &mut HashMap<String, M>, name: &str, saved: Option<M>) {
    restore(env, name, saved);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::MatrixType;
    use matlang_matrix::Matrix;
    use matlang_semiring::{Boolean, Nat, Real};

    fn real_instance(n: usize, a: Matrix<Real>) -> Instance<Real> {
        Instance::new().with_dim("a", n).with_matrix("A", a)
    }

    fn registry() -> FunctionRegistry<Real> {
        FunctionRegistry::standard_field()
    }

    fn mat(rows: &[&[f64]]) -> Matrix<Real> {
        Matrix::from_f64_rows(rows).unwrap()
    }

    #[test]
    fn variables_constants_and_basic_ops() {
        let a = mat(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let inst = real_instance(2, a.clone());
        let reg = registry();
        assert_eq!(evaluate(&Expr::var("A"), &inst, &reg).unwrap(), a);
        assert_eq!(
            evaluate(&Expr::lit(2.5), &inst, &reg).unwrap(),
            Matrix::scalar(Real(2.5))
        );
        assert_eq!(
            evaluate(&Expr::var("A").t(), &inst, &reg).unwrap(),
            a.transpose()
        );
        assert_eq!(
            evaluate(&Expr::var("A").add(Expr::var("A")), &inst, &reg).unwrap(),
            a.add(&a).unwrap()
        );
        assert_eq!(
            evaluate(&Expr::var("A").mm(Expr::var("A")), &inst, &reg).unwrap(),
            a.matmul(&a).unwrap()
        );
        assert!(matches!(
            evaluate(&Expr::var("Z"), &inst, &reg),
            Err(EvalError::UnknownVariable { .. })
        ));
    }

    #[test]
    fn ones_and_diag_operators() {
        let a = mat(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let inst = real_instance(2, a);
        let reg = registry();
        assert_eq!(
            evaluate(&Expr::var("A").ones(), &inst, &reg).unwrap(),
            Matrix::ones_vector(2)
        );
        let diag = evaluate(&Expr::var("A").ones().diag(), &inst, &reg).unwrap();
        assert_eq!(diag, Matrix::identity(2));
    }

    #[test]
    fn scalar_multiplication_requires_scalar() {
        let a = mat(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let inst = real_instance(2, a.clone());
        let reg = registry();
        let ok = evaluate(&Expr::lit(2.0).smul(Expr::var("A")), &inst, &reg).unwrap();
        assert_eq!(ok, a.scalar_mul(&Real(2.0)));
        assert!(matches!(
            evaluate(&Expr::var("A").smul(Expr::var("A")), &inst, &reg),
            Err(EvalError::NotAScalar { .. })
        ));
    }

    #[test]
    fn hadamard_product_is_pointwise() {
        let a = mat(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let inst = real_instance(2, a.clone());
        let reg = registry();
        assert_eq!(
            evaluate(&Expr::var("A").had(Expr::var("A")), &inst, &reg).unwrap(),
            a.hadamard(&a).unwrap()
        );
    }

    #[test]
    fn apply_resolves_registered_functions() {
        let a = mat(&[&[4.0, 9.0]]);
        let inst = Instance::new().with_dim("a", 2).with_matrix("A", a);
        let mut reg = registry();
        reg.register("sqrt", |args: &[Real]| Real(args[0].0.sqrt()));
        let out = evaluate(&Expr::apply("sqrt", vec![Expr::var("A")]), &inst, &reg).unwrap();
        assert_eq!(out, mat(&[&[2.0, 3.0]]));
        assert!(matches!(
            evaluate(&Expr::apply("nope", vec![Expr::var("A")]), &inst, &reg),
            Err(EvalError::UnknownFunction { .. })
        ));
    }

    #[test]
    fn division_function_from_the_paper() {
        let inst: Instance<Real> = Instance::new().with_dim("a", 1);
        let reg = registry();
        let e = Expr::apply("div", vec![Expr::lit(6.0), Expr::lit(3.0)]);
        assert_eq!(
            evaluate(&e, &inst, &reg).unwrap(),
            Matrix::scalar(Real(2.0))
        );
    }

    #[test]
    fn example_3_1_one_vector_via_for_loop() {
        // e₁ := for v, X. X + v evaluates to the all-ones vector.
        let e = Expr::for_loop(
            "v",
            "a",
            "X",
            MatrixType::vector("a"),
            Expr::var("X").add(Expr::var("v")),
        );
        let inst = real_instance(4, Matrix::zeros(4, 4));
        assert_eq!(
            evaluate(&e, &inst, &registry()).unwrap(),
            Matrix::ones_vector(4)
        );
    }

    #[test]
    fn example_order_e_max_returns_last_canonical_vector() {
        // e_max := for v, X. v overwrites X and ends with bₙ (Section 3.2).
        let e = Expr::for_loop("v", "a", "X", MatrixType::vector("a"), Expr::var("v"));
        let inst = real_instance(5, Matrix::zeros(5, 5));
        assert_eq!(
            evaluate(&e, &inst, &registry()).unwrap(),
            Matrix::canonical(5, 4).unwrap()
        );
    }

    #[test]
    fn example_3_2_diag_via_for_loop() {
        // e_diag := for v, X. X + (vᵀ·e) × v·vᵀ with e = 1(A) gives the identity.
        let body = Expr::var("X").add(
            Expr::var("v")
                .t()
                .mm(Expr::var("A").ones())
                .smul(Expr::var("v").mm(Expr::var("v").t())),
        );
        let e = Expr::for_loop("v", "a", "X", MatrixType::square("a"), body);
        let inst = real_instance(
            3,
            mat(&[&[7.0, 0.0, 0.0], &[0.0, 7.0, 0.0], &[0.0, 0.0, 7.0]]),
        );
        assert_eq!(
            evaluate(&e, &inst, &registry()).unwrap(),
            Matrix::identity(3)
        );
    }

    #[test]
    fn for_loop_with_initialization() {
        // for v, X = A. X · X squares the accumulator n times: A^(2^n).
        let e = Expr::for_init(
            "v",
            "a",
            "X",
            MatrixType::scalar(),
            Expr::var("S"),
            Expr::var("X").mm(Expr::var("X")),
        );
        let inst: Instance<Real> = Instance::new()
            .with_dim("a", 3)
            .with_matrix("S", Matrix::scalar(Real(2.0)));
        // 2^(2^3) = 256.
        assert_eq!(
            evaluate(&e, &inst, &registry()).unwrap(),
            Matrix::scalar(Real(256.0))
        );
    }

    #[test]
    fn sum_quantifier_matches_desugared_for() {
        // Σv. v·vᵀ = identity matrix.
        let e = Expr::sum("v", "a", Expr::var("v").mm(Expr::var("v").t()));
        let inst = real_instance(4, Matrix::zeros(4, 4));
        assert_eq!(
            evaluate(&e, &inst, &registry()).unwrap(),
            Matrix::identity(4)
        );
    }

    #[test]
    fn hprod_quantifier_multiplies_pointwise() {
        // Π∘v. (vᵀ·A·v) over the diagonal (2, 3, 4) = 24 (Example 6.6).
        let e = Expr::hprod(
            "v",
            "a",
            Expr::var("v").t().mm(Expr::var("A")).mm(Expr::var("v")),
        );
        let a = mat(&[&[2.0, 9.0, 9.0], &[9.0, 3.0, 9.0], &[9.0, 9.0, 4.0]]);
        let inst = real_instance(3, a);
        assert_eq!(
            evaluate(&e, &inst, &registry()).unwrap(),
            Matrix::scalar(Real(24.0))
        );
    }

    #[test]
    fn mprod_quantifier_composes_matrix_products() {
        // Πv. A = Aⁿ.
        let e = Expr::mprod("v", "a", Expr::var("A"));
        let a = mat(&[&[1.0, 1.0], &[0.0, 1.0]]);
        let inst = real_instance(2, a.clone());
        assert_eq!(
            evaluate(&e, &inst, &registry()).unwrap(),
            a.matmul(&a).unwrap()
        );
    }

    #[test]
    fn let_binding_shares_a_subexpression() {
        let e = Expr::let_in(
            "T",
            Expr::var("A").mm(Expr::var("A")),
            Expr::var("T").add(Expr::var("T")),
        );
        let a = mat(&[&[1.0, 1.0], &[0.0, 1.0]]);
        let inst = real_instance(2, a.clone());
        let expected = a.matmul(&a).unwrap().scalar_mul(&Real(2.0));
        assert_eq!(evaluate(&e, &inst, &registry()).unwrap(), expected);
    }

    #[test]
    fn loop_over_unknown_or_zero_dimension_fails() {
        let e = Expr::sum("v", "missing", Expr::var("v"));
        let inst = real_instance(3, Matrix::zeros(3, 3));
        assert!(matches!(
            evaluate(&e, &inst, &registry()),
            Err(EvalError::UnknownDimension { .. })
        ));
        let zero = Expr::sum("v", "z", Expr::var("v"));
        let inst = Instance::new()
            .with_dim("z", 0)
            .with_matrix("A", Matrix::<Real>::zeros(1, 1));
        assert!(matches!(
            evaluate(&zero, &inst, &registry()),
            Err(EvalError::EmptyIteration { .. })
        ));
    }

    #[test]
    fn loop_shape_mismatch_is_detected() {
        // Accumulator declared square but the body is a vector.
        let e = Expr::For {
            var: "v".into(),
            var_dim: "a".into(),
            acc: "X".into(),
            acc_type: MatrixType::square("a"),
            init: None,
            body: Box::new(Expr::var("v")),
        };
        let inst = real_instance(3, Matrix::zeros(3, 3));
        assert!(matches!(
            evaluate(&e, &inst, &registry()),
            Err(EvalError::LoopShapeMismatch { .. })
        ));
    }

    #[test]
    fn four_clique_example_3_3_over_reals() {
        // Example 3.3: non-zero output iff the graph has a 4-clique.
        let g = |u: &str, v: &str| Expr::lit(1.0).minus(Expr::var(u).t().mm(Expr::var(v)));
        let pairwise_distinct = g("u", "v")
            .mm(g("u", "w"))
            .mm(g("u", "x"))
            .mm(g("v", "w"))
            .mm(g("v", "x"))
            .mm(g("w", "x"));
        let adjacency = |a: &str, b: &str| Expr::var(a).t().mm(Expr::var("V")).mm(Expr::var(b));
        let body = adjacency("u", "v")
            .mm(adjacency("u", "w"))
            .mm(adjacency("u", "x"))
            .mm(adjacency("v", "w"))
            .mm(adjacency("v", "x"))
            .mm(adjacency("w", "x"))
            .mm(pairwise_distinct);
        let e = Expr::sum(
            "u",
            "a",
            Expr::sum("v", "a", Expr::sum("w", "a", Expr::sum("x", "a", body))),
        );

        // K4: complete graph on 4 vertices has a 4-clique.
        let mut k4: Matrix<Real> = Matrix::zeros(4, 4);
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    k4.set(i, j, Real(1.0)).unwrap();
                }
            }
        }
        let inst = Instance::new().with_dim("a", 4).with_matrix("V", k4);
        let result = evaluate(&e, &inst, &registry())
            .unwrap()
            .as_scalar()
            .unwrap();
        assert!(result.0 > 0.0);

        // A 4-cycle has no 4-clique.
        let cycle = mat(&[
            &[0.0, 1.0, 0.0, 1.0],
            &[1.0, 0.0, 1.0, 0.0],
            &[0.0, 1.0, 0.0, 1.0],
            &[1.0, 0.0, 1.0, 0.0],
        ]);
        let inst = Instance::new().with_dim("a", 4).with_matrix("V", cycle);
        let result = evaluate(&e, &inst, &registry())
            .unwrap()
            .as_scalar()
            .unwrap();
        assert_eq!(result.0, 0.0);
    }

    #[test]
    fn evaluation_is_generic_over_semirings() {
        // Σv. vᵀ·A·v computes the "trace" in any semiring.
        let e = Expr::sum(
            "v",
            "a",
            Expr::var("v").t().mm(Expr::var("A")).mm(Expr::var("v")),
        );
        let nat_a: Matrix<Nat> =
            Matrix::from_rows(vec![vec![Nat(1), Nat(5)], vec![Nat(7), Nat(3)]]).unwrap();
        let inst: Instance<Nat> = Instance::new().with_dim("a", 2).with_matrix("A", nat_a);
        let reg: FunctionRegistry<Nat> = FunctionRegistry::new();
        assert_eq!(evaluate(&e, &inst, &reg).unwrap(), Matrix::scalar(Nat(4)));

        let bool_a: Matrix<Boolean> = Matrix::from_rows(vec![
            vec![Boolean(false), Boolean(true)],
            vec![Boolean(true), Boolean(true)],
        ])
        .unwrap();
        let inst: Instance<Boolean> = Instance::new().with_dim("a", 2).with_matrix("A", bool_a);
        let reg: FunctionRegistry<Boolean> = FunctionRegistry::new();
        assert_eq!(
            evaluate(&e, &inst, &reg).unwrap(),
            Matrix::scalar(Boolean(true))
        );
    }

    #[test]
    fn evaluate_with_env_pre_binds_variables() {
        let e = Expr::var("v").t().mm(Expr::var("v"));
        let inst: Instance<Real> = Instance::new().with_dim("a", 3);
        let mut env = HashMap::new();
        env.insert("v".to_string(), Matrix::canonical(3, 1).unwrap());
        let out = evaluate_with_env(&e, &inst, &registry(), &env).unwrap();
        assert_eq!(out, Matrix::scalar(Real(1.0)));
    }

    #[test]
    fn loop_variables_do_not_leak_into_outer_scope() {
        let inner = Expr::sum("v", "a", Expr::var("v"));
        let outer = inner.add(Expr::var("v"));
        let inst: Instance<Real> = Instance::new().with_dim("a", 2);
        // `v` is not bound outside the Σ, so the addition must fail.
        assert!(matches!(
            evaluate(&outer, &inst, &registry()),
            Err(EvalError::UnknownVariable { .. })
        ));
    }

    #[test]
    fn errors_display() {
        let errs = vec![
            EvalError::UnknownVariable { name: "X".into() },
            EvalError::UnknownFunction { name: "f".into() },
            EvalError::UnknownDimension { symbol: "a".into() },
            EvalError::EmptyIteration { symbol: "a".into() },
            EvalError::NotAScalar { shape: (2, 2) },
            EvalError::LoopShapeMismatch {
                acc: "X".into(),
                expected: (2, 2),
                found: (2, 1),
            },
            EvalError::Matrix(MatrixError::NotSquare { shape: (1, 2) }),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
