//! Desugaring of derived operators into "core" for-MATLANG.
//!
//! Section 3.1 of the paper shows that the one-vector and `diag` operators
//! are redundant in for-MATLANG (Examples 3.1 and 3.2) and Section 6.1
//! defines `Σv. e` as `for v, X. X + e`.  This module performs exactly those
//! rewritings (plus inlining of the `let` sugar), so that
//!
//! * the "core" grammar `e ::= V | eᵀ | e·e | e+e | e×e | f(e…) | for v,X. e`
//!   of Section 3.1 is reachable mechanically, and
//! * the equivalence of the sugared and desugared forms can be tested
//!   empirically (see the crate's integration tests).
//!
//! `Π∘` and `Π` are *not* rewritten: they carry their own initialization
//! (the all-ones matrix / the identity) and remain primitive, as in
//! Section 6.2/6.3.

use crate::expr::Expr;
use crate::schema::{Dim, MatrixType, Schema};
use crate::typecheck::{typecheck, TypeError};

/// Rewrites `Ones`, `Diag`, `Sum` and `Let` into core for-MATLANG constructs.
///
/// The `schema` is needed to determine the row symbol of the argument of
/// `Ones`/`Diag` and the result type of `Σ`-bodies; loop binders encountered
/// during the traversal extend it locally.
pub fn desugar(expr: &Expr, schema: &Schema) -> Result<Expr, TypeError> {
    let mut fresh = FreshNames::default();
    desugar_rec(expr, schema, &mut fresh)
}

/// Whether an expression is already in the core for-MATLANG grammar of
/// Section 3.1 (no `Ones`, `Diag`, `Let`, `Σ`, `Π∘`, `Π`).
pub fn is_core(expr: &Expr) -> bool {
    match expr {
        Expr::Var(_) | Expr::Const(_) => true,
        Expr::Transpose(e) => is_core(e),
        Expr::Ones(_) | Expr::Diag(_) | Expr::Let { .. } => false,
        Expr::Sum { .. } | Expr::HProd { .. } | Expr::MProd { .. } => false,
        Expr::MatMul(a, b) | Expr::Add(a, b) | Expr::ScalarMul(a, b) | Expr::Hadamard(a, b) => {
            is_core(a) && is_core(b)
        }
        Expr::Apply(_, args) => args.iter().all(is_core),
        Expr::For { init, body, .. } => {
            init.as_ref().map(|e| is_core(e)).unwrap_or(true) && is_core(body)
        }
    }
}

#[derive(Default)]
struct FreshNames {
    counter: usize,
}

impl FreshNames {
    fn next(&mut self, prefix: &str) -> String {
        self.counter += 1;
        format!("__{prefix}{}", self.counter)
    }
}

fn row_symbol(ty: &MatrixType) -> Result<String, TypeError> {
    match &ty.rows {
        Dim::Sym(s) => Ok(s.clone()),
        // A 1×… argument: iterate over the distinguished dimension 1.  The
        // paper never needs this case, but it is well-defined: the loop runs
        // exactly once.
        Dim::One => Ok(one_dim_symbol().to_string()),
    }
}

/// The pseudo size symbol used for one-row arguments; instances created by
/// helper APIs always assign it the value 1.
pub fn one_dim_symbol() -> &'static str {
    "__one"
}

fn desugar_rec(expr: &Expr, schema: &Schema, fresh: &mut FreshNames) -> Result<Expr, TypeError> {
    match expr {
        Expr::Var(_) | Expr::Const(_) => Ok(expr.clone()),
        Expr::Transpose(e) => Ok(Expr::Transpose(Box::new(desugar_rec(e, schema, fresh)?))),
        Expr::MatMul(a, b) => Ok(Expr::MatMul(
            Box::new(desugar_rec(a, schema, fresh)?),
            Box::new(desugar_rec(b, schema, fresh)?),
        )),
        Expr::Add(a, b) => Ok(Expr::Add(
            Box::new(desugar_rec(a, schema, fresh)?),
            Box::new(desugar_rec(b, schema, fresh)?),
        )),
        Expr::ScalarMul(a, b) => Ok(Expr::ScalarMul(
            Box::new(desugar_rec(a, schema, fresh)?),
            Box::new(desugar_rec(b, schema, fresh)?),
        )),
        Expr::Hadamard(a, b) => Ok(Expr::Hadamard(
            Box::new(desugar_rec(a, schema, fresh)?),
            Box::new(desugar_rec(b, schema, fresh)?),
        )),
        Expr::Apply(name, args) => Ok(Expr::Apply(
            name.clone(),
            args.iter()
                .map(|a| desugar_rec(a, schema, fresh))
                .collect::<Result<_, _>>()?,
        )),
        Expr::Ones(e) => {
            // Example 3.1: 1(e) = for v, X. X + v, with type(v) = (α, 1) where
            // type(e) = (α, β).
            let inner = desugar_rec(e, schema, fresh)?;
            let ty = typecheck(&inner, schema)?;
            let sym = row_symbol(&ty)?;
            let v = fresh.next("v");
            let x = fresh.next("X");
            Ok(Expr::for_loop(
                v.clone(),
                sym.clone(),
                x.clone(),
                MatrixType::new(ty.rows.clone(), Dim::One),
                Expr::var(x).add(Expr::var(v)),
            ))
        }
        Expr::Diag(e) => {
            // Example 3.2: diag(e) = for v, X. X + (vᵀ·e) × (v·vᵀ).
            let inner = desugar_rec(e, schema, fresh)?;
            let ty = typecheck(&inner, schema)?;
            if !ty.cols.is_one() {
                return Err(TypeError::NotAVector { found: ty });
            }
            let sym = row_symbol(&ty)?;
            let v = fresh.next("v");
            let x = fresh.next("X");
            let body = Expr::var(&x).add(
                Expr::var(&v)
                    .t()
                    .mm(inner)
                    .smul(Expr::var(&v).mm(Expr::var(&v).t())),
            );
            Ok(Expr::for_loop(
                v,
                sym,
                x,
                MatrixType::new(ty.rows.clone(), ty.rows.clone()),
                body,
            ))
        }
        Expr::Sum { var, var_dim, body } => {
            // Σv. e = for v, X. X + e (Section 6.1).
            let mut extended = schema.clone();
            extended.declare(
                var.clone(),
                MatrixType::new(Dim::sym(var_dim.clone()), Dim::One),
            );
            let body = desugar_rec(body, &extended, fresh)?;
            let body_ty = typecheck(&body, &extended)?;
            let x = fresh.next("X");
            Ok(Expr::For {
                var: var.clone(),
                var_dim: var_dim.clone(),
                acc: x.clone(),
                acc_type: body_ty,
                init: None,
                body: Box::new(Expr::var(x).add(body)),
            })
        }
        Expr::Let { var, value, body } => {
            // Footnote 1: `let` is substitution sugar.
            let value = desugar_rec(value, schema, fresh)?;
            let mut extended = schema.clone();
            extended.declare(var.clone(), typecheck(&value, schema)?);
            let body = desugar_rec(body, &extended, fresh)?;
            Ok(body.substitute(var, &value))
        }
        Expr::For {
            var,
            var_dim,
            acc,
            acc_type,
            init,
            body,
        } => {
            let init = match init {
                Some(e) => Some(Box::new(desugar_rec(e, schema, fresh)?)),
                None => None,
            };
            let mut extended = schema.clone();
            extended.declare(
                var.clone(),
                MatrixType::new(Dim::sym(var_dim.clone()), Dim::One),
            );
            extended.declare(acc.clone(), acc_type.clone());
            let body = desugar_rec(body, &extended, fresh)?;
            Ok(Expr::For {
                var: var.clone(),
                var_dim: var_dim.clone(),
                acc: acc.clone(),
                acc_type: acc_type.clone(),
                init,
                body: Box::new(body),
            })
        }
        Expr::HProd { var, var_dim, body } => {
            let mut extended = schema.clone();
            extended.declare(
                var.clone(),
                MatrixType::new(Dim::sym(var_dim.clone()), Dim::One),
            );
            Ok(Expr::HProd {
                var: var.clone(),
                var_dim: var_dim.clone(),
                body: Box::new(desugar_rec(body, &extended, fresh)?),
            })
        }
        Expr::MProd { var, var_dim, body } => {
            let mut extended = schema.clone();
            extended.declare(
                var.clone(),
                MatrixType::new(Dim::sym(var_dim.clone()), Dim::One),
            );
            Ok(Expr::MProd {
                var: var.clone(),
                var_dim: var_dim.clone(),
                body: Box::new(desugar_rec(body, &extended, fresh)?),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::functions::FunctionRegistry;
    use crate::schema::Instance;
    use matlang_matrix::Matrix;
    use matlang_semiring::Real;

    fn schema() -> Schema {
        Schema::new()
            .with_var("A", MatrixType::square("a"))
            .with_var("u", MatrixType::vector("a"))
    }

    fn instance() -> Instance<Real> {
        Instance::new()
            .with_dim("a", 3)
            .with_matrix(
                "A",
                Matrix::from_f64_rows(&[&[1.0, 2.0, 0.0], &[0.0, 3.0, 1.0], &[4.0, 0.0, 5.0]])
                    .unwrap(),
            )
            .with_matrix(
                "u",
                Matrix::from_f64_rows(&[&[1.0], &[2.0], &[3.0]]).unwrap(),
            )
    }

    fn assert_equivalent(sugared: &Expr) {
        let core = desugar(sugared, &schema()).unwrap();
        assert!(is_core(&core), "desugared expression is not core: {core}");
        let reg = FunctionRegistry::standard_field();
        let inst = instance();
        let lhs = evaluate(sugared, &inst, &reg).unwrap();
        let rhs = evaluate(&core, &inst, &reg).unwrap();
        assert_eq!(
            lhs, rhs,
            "sugared and desugared results differ for {sugared}"
        );
    }

    #[test]
    fn ones_desugars_to_example_3_1() {
        assert_equivalent(&Expr::var("A").ones());
    }

    #[test]
    fn diag_desugars_to_example_3_2() {
        assert_equivalent(&Expr::var("u").diag());
        assert_equivalent(&Expr::var("A").ones().diag());
    }

    #[test]
    fn sum_desugars_to_additive_for_loop() {
        assert_equivalent(&Expr::sum("v", "a", Expr::var("v").mm(Expr::var("v").t())));
        assert_equivalent(&Expr::sum(
            "v",
            "a",
            Expr::var("v").t().mm(Expr::var("A")).mm(Expr::var("v")),
        ));
    }

    #[test]
    fn let_is_inlined_by_substitution() {
        let e = Expr::let_in(
            "T",
            Expr::var("A").mm(Expr::var("A")),
            Expr::var("T").add(Expr::var("T").t()),
        );
        assert_equivalent(&e);
        let core = desugar(&e, &schema()).unwrap();
        assert!(!format!("{core}").contains("let"));
    }

    #[test]
    fn nested_sugar_is_fully_removed() {
        let e = Expr::sum("v", "a", Expr::var("v").mm(Expr::var("A").ones().t()));
        let core = desugar(&e, &schema()).unwrap();
        assert!(is_core(&core));
        assert_equivalent(&e);
    }

    #[test]
    fn diag_of_non_vector_is_rejected() {
        let e = Expr::var("A").diag();
        assert!(matches!(
            desugar(&e, &schema()),
            Err(TypeError::NotAVector { .. })
        ));
    }

    #[test]
    fn hprod_and_mprod_are_left_primitive_but_bodies_are_desugared() {
        let e = Expr::hprod("v", "a", Expr::var("v").t().mm(Expr::var("A").ones()));
        let d = desugar(&e, &schema()).unwrap();
        match &d {
            Expr::HProd { body, .. } => assert!(is_core(body)),
            other => panic!("expected HProd, got {other}"),
        }
        assert!(!is_core(&d));
        let m = Expr::mprod("v", "a", Expr::var("A"));
        assert!(matches!(
            desugar(&m, &schema()).unwrap(),
            Expr::MProd { .. }
        ));
    }

    #[test]
    fn is_core_classifies_correctly() {
        assert!(is_core(&Expr::var("A").t().mm(Expr::var("A"))));
        assert!(!is_core(&Expr::var("A").ones()));
        assert!(!is_core(&Expr::let_in("T", Expr::var("A"), Expr::var("T"))));
        let f = Expr::for_loop(
            "v",
            "a",
            "X",
            MatrixType::vector("a"),
            Expr::var("X").add(Expr::var("v")),
        );
        assert!(is_core(&f));
    }

    #[test]
    fn desugared_expressions_still_typecheck() {
        let e = Expr::sum("v", "a", Expr::var("v").mm(Expr::var("A").ones().t()));
        let core = desugar(&e, &schema()).unwrap();
        let ty = typecheck(&core, &schema()).unwrap();
        assert_eq!(ty, MatrixType::square("a"));
    }
}
