//! Algebraic simplification of expressions.
//!
//! The paper's concluding section points at efficient evaluation of
//! (fragments of) for-MATLANG as future work; this module implements the
//! obvious first step: a semantics-preserving rewriter that removes
//! syntactic noise produced by mechanical translations (the circuit
//! decompiler, the RA⁺_K/WL translations and the desugarer all emit
//! expressions with double transposes, multiplications by the literal `1`,
//! additions of the literal `0` and single-use `let` bindings).
//!
//! Every rule is an identity in *every* commutative semiring, so rewriting is
//! sound for all annotation domains:
//!
//! * `(eᵀ)ᵀ → e`
//! * `(const 1) × e → e` and `(const 0) × e` stays (it is the zero matrix of
//!   `e`'s shape, which cannot be written without knowing the shape — left
//!   untouched),
//! * `(const c) × (const d) → const (c·d)` and `(const c) + (const d) → const (c+d)`,
//! * `(const c)·(const d) → const (c·d)` for `1×1` products,
//! * `let X = e in X → e`, and inlining of `let`-bound *variables* and
//!   *constants* (cheap values whose duplication costs nothing),
//! * transpose of a constant is the constant.

use crate::expr::Expr;

/// Applies the simplification rules bottom-up until a fixpoint is reached.
pub fn simplify(expr: &Expr) -> Expr {
    let mut current = expr.clone();
    loop {
        let next = pass(&current);
        if next == current {
            return next;
        }
        current = next;
    }
}

/// The number of AST nodes saved by simplification (for reporting/tests).
pub fn savings(expr: &Expr) -> usize {
    expr.size().saturating_sub(simplify(expr).size())
}

fn pass(expr: &Expr) -> Expr {
    let rebuilt = map_children(expr);
    rewrite_node(rebuilt)
}

fn map_children(expr: &Expr) -> Expr {
    match expr {
        Expr::Var(_) | Expr::Const(_) => expr.clone(),
        Expr::Transpose(e) => Expr::Transpose(Box::new(pass(e))),
        Expr::Ones(e) => Expr::Ones(Box::new(pass(e))),
        Expr::Diag(e) => Expr::Diag(Box::new(pass(e))),
        Expr::MatMul(a, b) => Expr::MatMul(Box::new(pass(a)), Box::new(pass(b))),
        Expr::Add(a, b) => Expr::Add(Box::new(pass(a)), Box::new(pass(b))),
        Expr::ScalarMul(a, b) => Expr::ScalarMul(Box::new(pass(a)), Box::new(pass(b))),
        Expr::Hadamard(a, b) => Expr::Hadamard(Box::new(pass(a)), Box::new(pass(b))),
        Expr::Apply(f, args) => Expr::Apply(f.clone(), args.iter().map(pass).collect()),
        Expr::Let { var, value, body } => Expr::Let {
            var: var.clone(),
            value: Box::new(pass(value)),
            body: Box::new(pass(body)),
        },
        Expr::For {
            var,
            var_dim,
            acc,
            acc_type,
            init,
            body,
        } => Expr::For {
            var: var.clone(),
            var_dim: var_dim.clone(),
            acc: acc.clone(),
            acc_type: acc_type.clone(),
            init: init.as_ref().map(|e| Box::new(pass(e))),
            body: Box::new(pass(body)),
        },
        Expr::Sum { var, var_dim, body } => Expr::Sum {
            var: var.clone(),
            var_dim: var_dim.clone(),
            body: Box::new(pass(body)),
        },
        Expr::HProd { var, var_dim, body } => Expr::HProd {
            var: var.clone(),
            var_dim: var_dim.clone(),
            body: Box::new(pass(body)),
        },
        Expr::MProd { var, var_dim, body } => Expr::MProd {
            var: var.clone(),
            var_dim: var_dim.clone(),
            body: Box::new(pass(body)),
        },
    }
}

// The `c == 1.0` guard below stays a guard: clippy's suggested float-literal
// pattern is itself linted (illegal_floating_point_literal_pattern).
#[allow(clippy::redundant_guards)]
fn rewrite_node(expr: Expr) -> Expr {
    match expr {
        // (eᵀ)ᵀ → e ; (const c)ᵀ → const c.
        Expr::Transpose(inner) => match *inner {
            Expr::Transpose(e) => *e,
            Expr::Const(c) => Expr::Const(c),
            other => Expr::Transpose(Box::new(other)),
        },
        // Scalar-multiplication identities.
        Expr::ScalarMul(a, b) => match (*a, *b) {
            (Expr::Const(c), e) if c == 1.0 => e,
            (Expr::Const(c), Expr::Const(d)) => Expr::Const(c * d),
            (Expr::Const(c), Expr::ScalarMul(inner_scalar, inner)) => {
                // c × (d × e) → (c·d) × e when the inner scalar is a constant.
                match *inner_scalar {
                    Expr::Const(d) => Expr::ScalarMul(Box::new(Expr::Const(c * d)), inner),
                    other => Expr::ScalarMul(
                        Box::new(Expr::Const(c)),
                        Box::new(Expr::ScalarMul(Box::new(other), inner)),
                    ),
                }
            }
            (a, b) => Expr::ScalarMul(Box::new(a), Box::new(b)),
        },
        // Constant folding for 1×1 sums and products.
        Expr::Add(a, b) => match (*a, *b) {
            (Expr::Const(c), Expr::Const(d)) => Expr::Const(c + d),
            (a, b) => Expr::Add(Box::new(a), Box::new(b)),
        },
        Expr::MatMul(a, b) => match (*a, *b) {
            (Expr::Const(c), Expr::Const(d)) => Expr::Const(c * d),
            (a, b) => Expr::MatMul(Box::new(a), Box::new(b)),
        },
        Expr::Hadamard(a, b) => match (*a, *b) {
            (Expr::Const(c), Expr::Const(d)) => Expr::Const(c * d),
            (a, b) => Expr::Hadamard(Box::new(a), Box::new(b)),
        },
        // `let` simplifications: trivial bodies and cheap bound values.
        Expr::Let { var, value, body } => {
            if let Expr::Var(name) = body.as_ref() {
                if name == &var {
                    return *value;
                }
            }
            let cheap = matches!(value.as_ref(), Expr::Var(_) | Expr::Const(_));
            let used = body.free_vars().contains(&var);
            if !used {
                // The binding is dead; keep only the body.  (The bound value
                // is pure — the language has no effects — so this is sound.)
                return *body;
            }
            if cheap {
                return body.substitute(&var, &value);
            }
            Expr::Let { var, value, body }
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::functions::FunctionRegistry;
    use crate::schema::{Instance, MatrixType};
    use matlang_matrix::Matrix;
    use matlang_semiring::Real;

    fn instance() -> Instance<Real> {
        Instance::new()
            .with_dim("n", 3)
            .with_matrix(
                "A",
                Matrix::from_f64_rows(&[&[1.0, 2.0, 0.0], &[0.0, 3.0, 1.0], &[4.0, 0.0, 5.0]])
                    .unwrap(),
            )
            .with_matrix(
                "u",
                Matrix::from_f64_rows(&[&[1.0], &[2.0], &[3.0]]).unwrap(),
            )
    }

    fn assert_equivalent_and_smaller(expr: &Expr) {
        let simplified = simplify(expr);
        assert!(simplified.size() <= expr.size());
        let registry = FunctionRegistry::standard_field();
        let inst = instance();
        let lhs = evaluate(expr, &inst, &registry).unwrap();
        let rhs = evaluate(&simplified, &inst, &registry).unwrap();
        assert_eq!(lhs, rhs, "simplification changed the value of {expr}");
    }

    #[test]
    fn double_transpose_is_removed() {
        let e = Expr::var("A").t().t();
        assert_eq!(simplify(&e), Expr::var("A"));
        assert_equivalent_and_smaller(&e);
        let nested = Expr::var("A").t().t().t();
        assert_eq!(simplify(&nested), Expr::var("A").t());
    }

    #[test]
    fn multiplication_by_one_is_removed_and_constants_fold() {
        let e = Expr::lit(1.0).smul(Expr::var("A"));
        assert_eq!(simplify(&e), Expr::var("A"));
        let folded = Expr::lit(2.0).smul(Expr::lit(3.0).smul(Expr::var("A")));
        assert_eq!(simplify(&folded), Expr::lit(6.0).smul(Expr::var("A")));
        let scalar_chain = Expr::lit(2.0).add(Expr::lit(3.0)).mm(Expr::lit(4.0));
        assert_eq!(simplify(&scalar_chain), Expr::lit(20.0));
        assert_equivalent_and_smaller(&folded);
    }

    #[test]
    fn minus_helper_simplifies_its_constant_part() {
        // 1 − (1 − x) builds nested constants that partially fold away.
        let e = Expr::lit(1.0).minus(Expr::lit(1.0).minus(Expr::var("s")));
        let inst = instance().with_matrix("s", Matrix::scalar(Real(0.25)));
        let registry = FunctionRegistry::standard_field();
        let lhs = evaluate(&e, &inst, &registry).unwrap();
        let rhs = evaluate(&simplify(&e), &inst, &registry).unwrap();
        assert_eq!(lhs, rhs);
        assert!(simplify(&e).size() <= e.size());
    }

    #[test]
    fn trivial_and_dead_lets_are_removed() {
        let trivial = Expr::let_in("T", Expr::var("A").mm(Expr::var("A")), Expr::var("T"));
        assert_eq!(simplify(&trivial), Expr::var("A").mm(Expr::var("A")));
        let dead = Expr::let_in("T", Expr::var("A").mm(Expr::var("A")), Expr::var("u"));
        assert_eq!(simplify(&dead), Expr::var("u"));
        let cheap = Expr::let_in("T", Expr::var("A"), Expr::var("T").add(Expr::var("T")));
        assert_eq!(simplify(&cheap), Expr::var("A").add(Expr::var("A")));
        // Expensive, genuinely shared bindings are preserved.
        let shared = Expr::let_in(
            "T",
            Expr::var("A").mm(Expr::var("A")),
            Expr::var("T").add(Expr::var("T")),
        );
        assert!(matches!(simplify(&shared), Expr::Let { .. }));
        for e in [trivial, dead, cheap, shared] {
            assert_equivalent_and_smaller(&e);
        }
    }

    #[test]
    fn simplification_recurses_into_loops() {
        let e = Expr::sum(
            "v",
            "n",
            Expr::lit(1.0).smul(
                Expr::var("v")
                    .t()
                    .t()
                    .t()
                    .mm(Expr::var("A"))
                    .mm(Expr::var("v")),
            ),
        );
        let simplified = simplify(&e);
        assert!(simplified.size() < e.size());
        assert_equivalent_and_smaller(&e);
        let f = Expr::for_init(
            "v",
            "n",
            "X",
            MatrixType::square("n"),
            Expr::var("A").t().t(),
            Expr::var("X").add(Expr::lit(1.0).smul(Expr::var("A"))),
        );
        assert_equivalent_and_smaller(&f);
    }

    #[test]
    fn savings_reports_node_reduction() {
        let e = Expr::lit(1.0).smul(Expr::var("A").t().t());
        assert_eq!(savings(&e), e.size() - 1);
        assert_eq!(savings(&Expr::var("A")), 0);
    }

    #[test]
    fn simplification_is_idempotent() {
        let exprs = [
            Expr::var("A").t().t(),
            Expr::lit(2.0).smul(Expr::lit(3.0).smul(Expr::var("A"))),
            Expr::let_in("T", Expr::var("A"), Expr::var("T").mm(Expr::var("T"))),
            Expr::sum("v", "n", Expr::lit(1.0).smul(Expr::var("v"))),
        ];
        for e in exprs {
            let once = simplify(&e);
            let twice = simplify(&once);
            assert_eq!(once, twice);
        }
    }
}
