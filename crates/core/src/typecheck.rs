//! The typing rules of MATLANG and for-MATLANG (Sections 2 and 3.1).
//!
//! A well-typed expression can be evaluated on any instance regardless of the
//! concrete dimensions assigned to size symbols; the evaluator relies on the
//! type checker both for early error reporting and to determine the shape of
//! loop accumulators.

use crate::expr::Expr;
use crate::schema::{Dim, MatrixType, Schema};
use std::collections::HashMap;
use std::fmt;

/// Errors raised by the type checker.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeError {
    /// A matrix variable is not declared in the schema (or bound by a loop).
    UnknownVariable {
        /// The undeclared name.
        name: String,
    },
    /// The two sides of `+`, `∘` or the arguments of a pointwise function
    /// have different types.
    Mismatch {
        /// The operation being typed.
        op: &'static str,
        /// The type of the left / first operand.
        left: MatrixType,
        /// The type of the right / offending operand.
        right: MatrixType,
    },
    /// The inner dimensions of a matrix product disagree.
    ProductMismatch {
        /// Type of the left operand.
        left: MatrixType,
        /// Type of the right operand.
        right: MatrixType,
    },
    /// `diag` was applied to a non-vector.
    NotAVector {
        /// The offending type.
        found: MatrixType,
    },
    /// Scalar multiplication whose left operand is not `(1, 1)`.
    NotAScalar {
        /// The offending type.
        found: MatrixType,
    },
    /// A for-loop body (or initializer) does not have the accumulator's type.
    LoopBodyMismatch {
        /// The accumulator variable.
        acc: String,
        /// The declared accumulator type.
        expected: MatrixType,
        /// The type of the body / initializer.
        found: MatrixType,
    },
    /// The body of a `Π` (matrix-product) loop must be square so that the
    /// iterated products compose.
    ProductLoopNotSquare {
        /// The offending body type.
        found: MatrixType,
    },
    /// A pointwise function was applied to zero arguments.
    EmptyApplication {
        /// The function name.
        name: String,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnknownVariable { name } => {
                write!(f, "variable `{name}` is not declared in the schema")
            }
            TypeError::Mismatch { op, left, right } => {
                write!(f, "type mismatch in {op}: {left} vs {right}")
            }
            TypeError::ProductMismatch { left, right } => {
                write!(
                    f,
                    "cannot multiply {left} by {right}: inner size symbols differ"
                )
            }
            TypeError::NotAVector { found } => {
                write!(f, "diag expects a column vector, found {found}")
            }
            TypeError::NotAScalar { found } => {
                write!(
                    f,
                    "scalar multiplication expects a (1, 1) left operand, found {found}"
                )
            }
            TypeError::LoopBodyMismatch {
                acc,
                expected,
                found,
            } => write!(
                f,
                "loop over accumulator `{acc}` expects body/init of type {expected}, found {found}"
            ),
            TypeError::ProductLoopNotSquare { found } => {
                write!(f, "Π-loop body must be square, found {found}")
            }
            TypeError::EmptyApplication { name } => {
                write!(f, "pointwise function `{name}` applied to no arguments")
            }
        }
    }
}

impl std::error::Error for TypeError {}

/// A typing environment: the schema plus loop/let-bound variables.
struct TypeEnv<'a> {
    schema: &'a Schema,
    locals: HashMap<String, MatrixType>,
}

impl<'a> TypeEnv<'a> {
    fn lookup(&self, name: &str) -> Option<MatrixType> {
        self.locals
            .get(name)
            .cloned()
            .or_else(|| self.schema.var_type(name).cloned())
    }
}

/// Type checks `expr` against `schema`, returning its type `(α, β)`.
///
/// This is the paper's `type_S(e)` function, extended with the loop binders'
/// annotations for `v` and `X`.
pub fn typecheck(expr: &Expr, schema: &Schema) -> Result<MatrixType, TypeError> {
    let mut env = TypeEnv {
        schema,
        locals: HashMap::new(),
    };
    check(expr, &mut env)
}

fn check(expr: &Expr, env: &mut TypeEnv<'_>) -> Result<MatrixType, TypeError> {
    match expr {
        Expr::Var(name) => env
            .lookup(name)
            .ok_or_else(|| TypeError::UnknownVariable { name: name.clone() }),
        Expr::Const(_) => Ok(MatrixType::scalar()),
        Expr::Transpose(e) => Ok(check(e, env)?.transposed()),
        Expr::Ones(e) => {
            let ty = check(e, env)?;
            Ok(MatrixType::new(ty.rows, Dim::One))
        }
        Expr::Diag(e) => {
            let ty = check(e, env)?;
            if !ty.cols.is_one() {
                return Err(TypeError::NotAVector { found: ty });
            }
            Ok(MatrixType::new(ty.rows.clone(), ty.rows))
        }
        Expr::MatMul(a, b) => {
            let ta = check(a, env)?;
            let tb = check(b, env)?;
            if ta.cols != tb.rows {
                return Err(TypeError::ProductMismatch {
                    left: ta,
                    right: tb,
                });
            }
            Ok(MatrixType::new(ta.rows, tb.cols))
        }
        Expr::Add(a, b) => {
            let ta = check(a, env)?;
            let tb = check(b, env)?;
            if ta != tb {
                return Err(TypeError::Mismatch {
                    op: "matrix addition",
                    left: ta,
                    right: tb,
                });
            }
            Ok(ta)
        }
        Expr::ScalarMul(a, b) => {
            let ta = check(a, env)?;
            if !ta.is_scalar() {
                return Err(TypeError::NotAScalar { found: ta });
            }
            check(b, env)
        }
        Expr::Hadamard(a, b) => {
            let ta = check(a, env)?;
            let tb = check(b, env)?;
            if ta != tb {
                return Err(TypeError::Mismatch {
                    op: "Hadamard product",
                    left: ta,
                    right: tb,
                });
            }
            Ok(ta)
        }
        Expr::Apply(name, args) => {
            if args.is_empty() {
                return Err(TypeError::EmptyApplication { name: name.clone() });
            }
            let first = check(&args[0], env)?;
            for arg in &args[1..] {
                let ty = check(arg, env)?;
                if ty != first {
                    return Err(TypeError::Mismatch {
                        op: "pointwise function application",
                        left: first,
                        right: ty,
                    });
                }
            }
            Ok(first)
        }
        Expr::Let { var, value, body } => {
            let value_ty = check(value, env)?;
            let saved = env.locals.insert(var.clone(), value_ty);
            let result = check(body, env);
            restore(env, var, saved);
            result
        }
        Expr::For {
            var,
            var_dim,
            acc,
            acc_type,
            init,
            body,
        } => {
            if let Some(init) = init {
                let init_ty = check(init, env)?;
                if &init_ty != acc_type {
                    return Err(TypeError::LoopBodyMismatch {
                        acc: acc.clone(),
                        expected: acc_type.clone(),
                        found: init_ty,
                    });
                }
            }
            let saved_var = env.locals.insert(
                var.clone(),
                MatrixType::new(Dim::sym(var_dim.clone()), Dim::One),
            );
            let saved_acc = env.locals.insert(acc.clone(), acc_type.clone());
            let body_ty = check(body, env);
            restore(env, acc, saved_acc);
            restore(env, var, saved_var);
            let body_ty = body_ty?;
            if &body_ty != acc_type {
                return Err(TypeError::LoopBodyMismatch {
                    acc: acc.clone(),
                    expected: acc_type.clone(),
                    found: body_ty,
                });
            }
            Ok(acc_type.clone())
        }
        Expr::Sum { var, var_dim, body } | Expr::HProd { var, var_dim, body } => {
            let saved = env.locals.insert(
                var.clone(),
                MatrixType::new(Dim::sym(var_dim.clone()), Dim::One),
            );
            let body_ty = check(body, env);
            restore(env, var, saved);
            body_ty
        }
        Expr::MProd { var, var_dim, body } => {
            let saved = env.locals.insert(
                var.clone(),
                MatrixType::new(Dim::sym(var_dim.clone()), Dim::One),
            );
            let body_ty = check(body, env);
            restore(env, var, saved);
            let body_ty = body_ty?;
            if body_ty.rows != body_ty.cols {
                return Err(TypeError::ProductLoopNotSquare { found: body_ty });
            }
            Ok(body_ty)
        }
    }
}

fn restore(env: &mut TypeEnv<'_>, name: &str, saved: Option<MatrixType>) {
    match saved {
        Some(ty) => {
            env.locals.insert(name.to_string(), ty);
        }
        None => {
            env.locals.remove(name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new()
            .with_var("A", MatrixType::square("a"))
            .with_var("B", MatrixType::square("a"))
            .with_var("u", MatrixType::vector("a"))
            .with_var("s", MatrixType::scalar())
            .with_var("R", MatrixType::new(Dim::sym("a"), Dim::sym("b")))
    }

    #[test]
    fn variables_and_constants() {
        assert_eq!(
            typecheck(&Expr::var("A"), &schema()).unwrap(),
            MatrixType::square("a")
        );
        assert_eq!(
            typecheck(&Expr::lit(3.0), &schema()).unwrap(),
            MatrixType::scalar()
        );
        assert!(matches!(
            typecheck(&Expr::var("missing"), &schema()),
            Err(TypeError::UnknownVariable { .. })
        ));
    }

    #[test]
    fn transpose_swaps_symbols() {
        let ty = typecheck(&Expr::var("R").t(), &schema()).unwrap();
        assert_eq!(ty, MatrixType::new(Dim::sym("b"), Dim::sym("a")));
    }

    #[test]
    fn ones_and_diag() {
        assert_eq!(
            typecheck(&Expr::var("R").ones(), &schema()).unwrap(),
            MatrixType::vector("a")
        );
        assert_eq!(
            typecheck(&Expr::var("u").diag(), &schema()).unwrap(),
            MatrixType::square("a")
        );
        assert!(matches!(
            typecheck(&Expr::var("A").diag(), &schema()),
            Err(TypeError::NotAVector { .. })
        ));
    }

    #[test]
    fn matmul_checks_inner_symbols() {
        assert_eq!(
            typecheck(&Expr::var("A").mm(Expr::var("u")), &schema()).unwrap(),
            MatrixType::vector("a")
        );
        assert_eq!(
            typecheck(
                &Expr::var("u").t().mm(Expr::var("A")).mm(Expr::var("u")),
                &schema()
            )
            .unwrap(),
            MatrixType::scalar()
        );
        assert!(matches!(
            typecheck(&Expr::var("u").mm(Expr::var("A")), &schema()),
            Err(TypeError::ProductMismatch { .. })
        ));
    }

    #[test]
    fn addition_requires_equal_types() {
        assert!(typecheck(&Expr::var("A").add(Expr::var("B")), &schema()).is_ok());
        assert!(matches!(
            typecheck(&Expr::var("A").add(Expr::var("u")), &schema()),
            Err(TypeError::Mismatch { .. })
        ));
    }

    #[test]
    fn scalar_multiplication_requires_scalar_left() {
        assert!(typecheck(&Expr::var("s").smul(Expr::var("A")), &schema()).is_ok());
        assert!(matches!(
            typecheck(&Expr::var("A").smul(Expr::var("B")), &schema()),
            Err(TypeError::NotAScalar { .. })
        ));
    }

    #[test]
    fn hadamard_requires_equal_types() {
        assert!(typecheck(&Expr::var("A").had(Expr::var("B")), &schema()).is_ok());
        assert!(typecheck(&Expr::var("A").had(Expr::var("u")), &schema()).is_err());
    }

    #[test]
    fn apply_requires_uniform_argument_types() {
        let ok = Expr::apply("f", vec![Expr::var("A"), Expr::var("B")]);
        assert!(typecheck(&ok, &schema()).is_ok());
        let bad = Expr::apply("f", vec![Expr::var("A"), Expr::var("u")]);
        assert!(typecheck(&bad, &schema()).is_err());
        let empty = Expr::apply("f", vec![]);
        assert!(matches!(
            typecheck(&empty, &schema()),
            Err(TypeError::EmptyApplication { .. })
        ));
    }

    #[test]
    fn let_binds_a_type() {
        let e = Expr::let_in("T", Expr::var("A").mm(Expr::var("B")), Expr::var("T").t());
        assert_eq!(typecheck(&e, &schema()).unwrap(), MatrixType::square("a"));
    }

    #[test]
    fn for_loop_example_3_1_one_vector() {
        // e₁ := for v, X. X + v — the one-vector (Example 3.1).
        let e = Expr::for_loop(
            "v",
            "a",
            "X",
            MatrixType::vector("a"),
            Expr::var("X").add(Expr::var("v")),
        );
        assert_eq!(typecheck(&e, &schema()).unwrap(), MatrixType::vector("a"));
    }

    #[test]
    fn for_loop_body_must_match_accumulator_type() {
        let e = Expr::for_loop("v", "a", "X", MatrixType::square("a"), Expr::var("v"));
        assert!(matches!(
            typecheck(&e, &schema()),
            Err(TypeError::LoopBodyMismatch { .. })
        ));
    }

    #[test]
    fn for_loop_init_must_match_accumulator_type() {
        let e = Expr::for_init(
            "v",
            "a",
            "X",
            MatrixType::square("a"),
            Expr::var("u"),
            Expr::var("X"),
        );
        assert!(matches!(
            typecheck(&e, &schema()),
            Err(TypeError::LoopBodyMismatch { .. })
        ));
    }

    #[test]
    fn sum_and_hprod_type_as_their_body() {
        let e = Expr::sum("v", "a", Expr::var("v").mm(Expr::var("v").t()));
        assert_eq!(typecheck(&e, &schema()).unwrap(), MatrixType::square("a"));
        let h = Expr::hprod(
            "v",
            "a",
            Expr::var("v").t().mm(Expr::var("A")).mm(Expr::var("v")),
        );
        assert_eq!(typecheck(&h, &schema()).unwrap(), MatrixType::scalar());
    }

    #[test]
    fn mprod_requires_square_body() {
        let ok = Expr::mprod("v", "a", Expr::var("A"));
        assert_eq!(typecheck(&ok, &schema()).unwrap(), MatrixType::square("a"));
        let bad = Expr::mprod("v", "a", Expr::var("u"));
        assert!(matches!(
            typecheck(&bad, &schema()),
            Err(TypeError::ProductLoopNotSquare { .. })
        ));
    }

    #[test]
    fn loop_variables_shadow_schema_variables() {
        // `u` is a schema vector; inside the Σ it is re-bound as the loop index
        // with the same type, and the expression stays well-typed.
        let e = Expr::sum("u", "a", Expr::var("u").t().mm(Expr::var("u")));
        assert_eq!(typecheck(&e, &schema()).unwrap(), MatrixType::scalar());
        // After the loop, the schema type is restored.
        let e2 = Expr::sum("u", "a", Expr::var("u")).add(Expr::var("u"));
        assert!(typecheck(&e2, &schema()).is_ok());
    }

    #[test]
    fn type_errors_display() {
        let errs: Vec<TypeError> = vec![
            TypeError::UnknownVariable { name: "Z".into() },
            TypeError::Mismatch {
                op: "matrix addition",
                left: MatrixType::scalar(),
                right: MatrixType::square("a"),
            },
            TypeError::ProductMismatch {
                left: MatrixType::square("a"),
                right: MatrixType::square("b"),
            },
            TypeError::NotAVector {
                found: MatrixType::square("a"),
            },
            TypeError::NotAScalar {
                found: MatrixType::square("a"),
            },
            TypeError::LoopBodyMismatch {
                acc: "X".into(),
                expected: MatrixType::square("a"),
                found: MatrixType::scalar(),
            },
            TypeError::ProductLoopNotSquare {
                found: MatrixType::vector("a"),
            },
            TypeError::EmptyApplication { name: "f".into() },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
