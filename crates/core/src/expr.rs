//! The expression AST for MATLANG and its extensions.

use crate::schema::MatrixType;
use std::collections::BTreeSet;

/// A MATLANG / for-MATLANG expression.
///
/// The grammar follows Sections 2, 3 and 6 of the paper.  Loop binders carry
/// the size symbol of the iteration vector (and, for `for`, the type of the
/// accumulator variable) so that expressions are self-contained and can be
/// type checked without having to pre-declare loop variables in the schema —
/// this corresponds to the paper's convention that "S now necessarily
/// includes v and X as variables and assigns size symbols to them".
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A matrix variable `V`.
    Var(String),
    /// A literal scalar constant (a `1 × 1` matrix).  Constants such as `1`,
    /// `2` or `1/2` appear in the paper's derived expressions (Appendix B–D);
    /// each semiring interprets them through `Semiring::from_f64`.
    Const(f64),
    /// Transpose `eᵀ`.
    Transpose(Box<Expr>),
    /// The one-vector `1(e)`: an `n × 1` all-ones vector where `n` is the
    /// number of rows of `e`.
    Ones(Box<Expr>),
    /// Diagonalization `diag(e)` of an `n × 1` vector into an `n × n`
    /// diagonal matrix.
    Diag(Box<Expr>),
    /// Matrix multiplication `e₁ · e₂`.
    MatMul(Box<Expr>, Box<Expr>),
    /// Matrix addition `e₁ + e₂`.
    Add(Box<Expr>, Box<Expr>),
    /// Scalar multiplication `e₁ × e₂` where `e₁` has type `(1, 1)`.
    ScalarMul(Box<Expr>, Box<Expr>),
    /// Hadamard (pointwise) product `e₁ ∘ e₂` (Section 6.2).
    Hadamard(Box<Expr>, Box<Expr>),
    /// Pointwise application `f(e₁, …, e_k)` of a named function from the
    /// function registry.
    Apply(String, Vec<Expr>),
    /// `let V = e₁ in e₂` — syntactic sugar (footnote 1 of the paper).
    Let {
        /// The bound variable name.
        var: String,
        /// The expression whose value is bound.
        value: Box<Expr>,
        /// The expression in which the binding is visible.
        body: Box<Expr>,
    },
    /// The canonical for-loop `for v, X. e` / `for v, X = e₀. e`
    /// (Section 3.1 / 3.2).
    For {
        /// The iteration vector variable `v`, bound to `b₁ⁿ, …, bₙⁿ` in order.
        var: String,
        /// The size symbol `γ` with `type(v) = (γ, 1)`; the loop runs for
        /// `D(γ)` iterations.
        var_dim: String,
        /// The accumulator variable `X`.
        acc: String,
        /// The type of the accumulator (equal to the type of the body).
        acc_type: MatrixType,
        /// Optional initialization `e₀` (defaults to the zero matrix).
        init: Option<Box<Expr>>,
        /// The loop body `e`, which may refer to both `v` and `X`.
        body: Box<Expr>,
    },
    /// The additive-update loop `Σv. e := for v, X. X + e` (Section 6.1).
    Sum {
        /// The iteration vector variable.
        var: String,
        /// The size symbol of the iteration vector.
        var_dim: String,
        /// The summand; may refer to `var` but not to an accumulator.
        body: Box<Expr>,
    },
    /// The Hadamard-product loop `Π∘v. e := for v, X = 1. X ∘ e`
    /// (Section 6.2).
    HProd {
        /// The iteration vector variable.
        var: String,
        /// The size symbol of the iteration vector.
        var_dim: String,
        /// The factor; may refer to `var`.
        body: Box<Expr>,
    },
    /// The matrix-product loop `Πv. e := for v, X = I. X · e` (Section 6.3).
    MProd {
        /// The iteration vector variable.
        var: String,
        /// The size symbol of the iteration vector.
        var_dim: String,
        /// The factor; may refer to `var`.
        body: Box<Expr>,
    },
}

impl Expr {
    /// A matrix variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// A literal scalar.
    pub fn lit(value: f64) -> Expr {
        Expr::Const(value)
    }

    /// Transpose of this expression.
    pub fn t(self) -> Expr {
        Expr::Transpose(Box::new(self))
    }

    /// The one-vector of this expression.
    pub fn ones(self) -> Expr {
        Expr::Ones(Box::new(self))
    }

    /// Diagonalization of this (vector-typed) expression.
    pub fn diag(self) -> Expr {
        Expr::Diag(Box::new(self))
    }

    /// Matrix product `self · rhs`.
    pub fn mm(self, rhs: Expr) -> Expr {
        Expr::MatMul(Box::new(self), Box::new(rhs))
    }

    /// Matrix sum `self + rhs`.
    ///
    /// Named `add` to match the paper's syntax; it consumes `self`, so it is
    /// not a candidate for `std::ops::Add` (which the whole builder API would
    /// otherwise have to move to).
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }

    /// Scalar multiplication `self × rhs` (self must be `1 × 1`).
    pub fn smul(self, rhs: Expr) -> Expr {
        Expr::ScalarMul(Box::new(self), Box::new(rhs))
    }

    /// Hadamard product `self ∘ rhs`.
    pub fn had(self, rhs: Expr) -> Expr {
        Expr::Hadamard(Box::new(self), Box::new(rhs))
    }

    /// Pointwise function application `name(args…)`.
    pub fn apply(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Apply(name.into(), args)
    }

    /// `let var = value in body`.
    pub fn let_in(var: impl Into<String>, value: Expr, body: Expr) -> Expr {
        Expr::Let {
            var: var.into(),
            value: Box::new(value),
            body: Box::new(body),
        }
    }

    /// The canonical for-loop with zero initialization.
    pub fn for_loop(
        var: impl Into<String>,
        var_dim: impl Into<String>,
        acc: impl Into<String>,
        acc_type: MatrixType,
        body: Expr,
    ) -> Expr {
        Expr::For {
            var: var.into(),
            var_dim: var_dim.into(),
            acc: acc.into(),
            acc_type,
            init: None,
            body: Box::new(body),
        }
    }

    /// The canonical for-loop with explicit initialization `for v, X = e₀. e`.
    pub fn for_init(
        var: impl Into<String>,
        var_dim: impl Into<String>,
        acc: impl Into<String>,
        acc_type: MatrixType,
        init: Expr,
        body: Expr,
    ) -> Expr {
        Expr::For {
            var: var.into(),
            var_dim: var_dim.into(),
            acc: acc.into(),
            acc_type,
            init: Some(Box::new(init)),
            body: Box::new(body),
        }
    }

    /// The additive-update loop `Σv. e`.
    pub fn sum(var: impl Into<String>, var_dim: impl Into<String>, body: Expr) -> Expr {
        Expr::Sum {
            var: var.into(),
            var_dim: var_dim.into(),
            body: Box::new(body),
        }
    }

    /// The Hadamard-product loop `Π∘v. e`.
    pub fn hprod(var: impl Into<String>, var_dim: impl Into<String>, body: Expr) -> Expr {
        Expr::HProd {
            var: var.into(),
            var_dim: var_dim.into(),
            body: Box::new(body),
        }
    }

    /// The matrix-product loop `Πv. e`.
    pub fn mprod(var: impl Into<String>, var_dim: impl Into<String>, body: Expr) -> Expr {
        Expr::MProd {
            var: var.into(),
            var_dim: var_dim.into(),
            body: Box::new(body),
        }
    }

    /// Scalar subtraction helper `self + (−1) × rhs`, used pervasively by the
    /// paper's derived expressions over the reals.
    pub fn minus(self, rhs: Expr) -> Expr {
        self.add(Expr::lit(-1.0).smul(rhs))
    }

    /// The set of *free* matrix variables of this expression (loop, let and
    /// accumulator variables bound inside are excluded).
    pub fn free_vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_free_vars(&mut Vec::new(), &mut out);
        out
    }

    fn collect_free_vars(&self, bound: &mut Vec<String>, out: &mut BTreeSet<String>) {
        match self {
            Expr::Var(name) => {
                if !bound.iter().any(|b| b == name) {
                    out.insert(name.clone());
                }
            }
            Expr::Const(_) => {}
            Expr::Transpose(e) | Expr::Ones(e) | Expr::Diag(e) => e.collect_free_vars(bound, out),
            Expr::MatMul(a, b) | Expr::Add(a, b) | Expr::ScalarMul(a, b) | Expr::Hadamard(a, b) => {
                a.collect_free_vars(bound, out);
                b.collect_free_vars(bound, out);
            }
            Expr::Apply(_, args) => {
                for a in args {
                    a.collect_free_vars(bound, out);
                }
            }
            Expr::Let { var, value, body } => {
                value.collect_free_vars(bound, out);
                bound.push(var.clone());
                body.collect_free_vars(bound, out);
                bound.pop();
            }
            Expr::For {
                var,
                acc,
                init,
                body,
                ..
            } => {
                if let Some(init) = init {
                    init.collect_free_vars(bound, out);
                }
                bound.push(var.clone());
                bound.push(acc.clone());
                body.collect_free_vars(bound, out);
                bound.pop();
                bound.pop();
            }
            Expr::Sum { var, body, .. }
            | Expr::HProd { var, body, .. }
            | Expr::MProd { var, body, .. } => {
                bound.push(var.clone());
                body.collect_free_vars(bound, out);
                bound.pop();
            }
        }
    }

    /// Capture-avoiding-enough substitution of every *free* occurrence of the
    /// variable `name` by `replacement`.  Loop/let binders with the same name
    /// shadow the substitution (the paper's `e(v, X/e₀)` notation from
    /// Section 3.2).
    pub fn substitute(&self, name: &str, replacement: &Expr) -> Expr {
        match self {
            Expr::Var(v) if v == name => replacement.clone(),
            Expr::Var(_) | Expr::Const(_) => self.clone(),
            Expr::Transpose(e) => Expr::Transpose(Box::new(e.substitute(name, replacement))),
            Expr::Ones(e) => Expr::Ones(Box::new(e.substitute(name, replacement))),
            Expr::Diag(e) => Expr::Diag(Box::new(e.substitute(name, replacement))),
            Expr::MatMul(a, b) => Expr::MatMul(
                Box::new(a.substitute(name, replacement)),
                Box::new(b.substitute(name, replacement)),
            ),
            Expr::Add(a, b) => Expr::Add(
                Box::new(a.substitute(name, replacement)),
                Box::new(b.substitute(name, replacement)),
            ),
            Expr::ScalarMul(a, b) => Expr::ScalarMul(
                Box::new(a.substitute(name, replacement)),
                Box::new(b.substitute(name, replacement)),
            ),
            Expr::Hadamard(a, b) => Expr::Hadamard(
                Box::new(a.substitute(name, replacement)),
                Box::new(b.substitute(name, replacement)),
            ),
            Expr::Apply(f, args) => Expr::Apply(
                f.clone(),
                args.iter()
                    .map(|a| a.substitute(name, replacement))
                    .collect(),
            ),
            Expr::Let { var, value, body } => {
                let value = Box::new(value.substitute(name, replacement));
                let body = if var == name {
                    body.clone()
                } else {
                    Box::new(body.substitute(name, replacement))
                };
                Expr::Let {
                    var: var.clone(),
                    value,
                    body,
                }
            }
            Expr::For {
                var,
                var_dim,
                acc,
                acc_type,
                init,
                body,
            } => {
                let init = init
                    .as_ref()
                    .map(|e| Box::new(e.substitute(name, replacement)));
                let body = if var == name || acc == name {
                    body.clone()
                } else {
                    Box::new(body.substitute(name, replacement))
                };
                Expr::For {
                    var: var.clone(),
                    var_dim: var_dim.clone(),
                    acc: acc.clone(),
                    acc_type: acc_type.clone(),
                    init,
                    body,
                }
            }
            Expr::Sum { var, var_dim, body } => Expr::Sum {
                var: var.clone(),
                var_dim: var_dim.clone(),
                body: if var == name {
                    body.clone()
                } else {
                    Box::new(body.substitute(name, replacement))
                },
            },
            Expr::HProd { var, var_dim, body } => Expr::HProd {
                var: var.clone(),
                var_dim: var_dim.clone(),
                body: if var == name {
                    body.clone()
                } else {
                    Box::new(body.substitute(name, replacement))
                },
            },
            Expr::MProd { var, var_dim, body } => Expr::MProd {
                var: var.clone(),
                var_dim: var_dim.clone(),
                body: if var == name {
                    body.clone()
                } else {
                    Box::new(body.substitute(name, replacement))
                },
            },
        }
    }

    /// Number of AST nodes — a rough syntactic size measure used by tests and
    /// by the parser round-trip checks.
    pub fn size(&self) -> usize {
        match self {
            Expr::Var(_) | Expr::Const(_) => 1,
            Expr::Transpose(e) | Expr::Ones(e) | Expr::Diag(e) => 1 + e.size(),
            Expr::MatMul(a, b) | Expr::Add(a, b) | Expr::ScalarMul(a, b) | Expr::Hadamard(a, b) => {
                1 + a.size() + b.size()
            }
            Expr::Apply(_, args) => 1 + args.iter().map(Expr::size).sum::<usize>(),
            Expr::Let { value, body, .. } => 1 + value.size() + body.size(),
            Expr::For { init, body, .. } => {
                1 + init.as_ref().map(|e| e.size()).unwrap_or(0) + body.size()
            }
            Expr::Sum { body, .. } | Expr::HProd { body, .. } | Expr::MProd { body, .. } => {
                1 + body.size()
            }
        }
    }

    /// Maximum nesting depth of loop constructs (`for`, `Σ`, `Π∘`, `Π`).
    pub fn loop_depth(&self) -> usize {
        match self {
            Expr::Var(_) | Expr::Const(_) => 0,
            Expr::Transpose(e) | Expr::Ones(e) | Expr::Diag(e) => e.loop_depth(),
            Expr::MatMul(a, b) | Expr::Add(a, b) | Expr::ScalarMul(a, b) | Expr::Hadamard(a, b) => {
                a.loop_depth().max(b.loop_depth())
            }
            Expr::Apply(_, args) => args.iter().map(Expr::loop_depth).max().unwrap_or(0),
            Expr::Let { value, body, .. } => value.loop_depth().max(body.loop_depth()),
            Expr::For { init, body, .. } => {
                1 + init
                    .as_ref()
                    .map(|e| e.loop_depth())
                    .unwrap_or(0)
                    .max(body.loop_depth())
            }
            Expr::Sum { body, .. } | Expr::HProd { body, .. } | Expr::MProd { body, .. } => {
                1 + body.loop_depth()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Dim, MatrixType};

    fn sq() -> MatrixType {
        MatrixType::new(Dim::sym("a"), Dim::sym("a"))
    }

    #[test]
    fn builders_produce_expected_nodes() {
        let e = Expr::var("A").t().mm(Expr::var("B")).add(Expr::lit(1.0));
        assert!(matches!(e, Expr::Add(_, _)));
        assert_eq!(e.size(), 6);
    }

    #[test]
    fn free_vars_excludes_bound_loop_variables() {
        let e = Expr::for_loop(
            "v",
            "a",
            "X",
            sq(),
            Expr::var("X").add(Expr::var("v").mm(Expr::var("A"))),
        );
        let fv = e.free_vars();
        assert!(fv.contains("A"));
        assert!(!fv.contains("v"));
        assert!(!fv.contains("X"));
    }

    #[test]
    fn free_vars_in_init_are_free() {
        let e = Expr::for_init("v", "a", "X", sq(), Expr::var("B"), Expr::var("X"));
        assert!(e.free_vars().contains("B"));
    }

    #[test]
    fn let_binds_its_variable() {
        let e = Expr::let_in("T", Expr::var("A"), Expr::var("T").mm(Expr::var("T")));
        let fv = e.free_vars();
        assert_eq!(fv.into_iter().collect::<Vec<_>>(), vec!["A".to_string()]);
    }

    #[test]
    fn substitute_replaces_free_occurrences_only() {
        let e = Expr::var("X").add(Expr::sum("X", "a", Expr::var("X")));
        let s = e.substitute("X", &Expr::var("Y"));
        // The outer X is replaced, the Σ-bound X is not.
        match s {
            Expr::Add(left, right) => {
                assert_eq!(*left, Expr::var("Y"));
                match *right {
                    Expr::Sum { body, .. } => assert_eq!(*body, Expr::var("X")),
                    other => panic!("expected Sum, got {other:?}"),
                }
            }
            other => panic!("expected Add, got {other:?}"),
        }
    }

    #[test]
    fn substitute_into_for_body_respects_shadowing() {
        let e = Expr::for_loop("v", "a", "X", sq(), Expr::var("A").add(Expr::var("X")));
        let s = e.substitute("A", &Expr::var("B"));
        match &s {
            Expr::For { body, .. } => {
                assert!(body.free_vars().contains("B"));
            }
            other => panic!("expected For, got {other:?}"),
        }
        // Substituting the accumulator name does nothing inside the body.
        let t = e.substitute("X", &Expr::var("Z"));
        assert_eq!(t, e);
    }

    #[test]
    fn loop_depth_counts_nested_loops() {
        let four_nested = Expr::sum(
            "u",
            "a",
            Expr::sum(
                "v",
                "a",
                Expr::sum("w", "a", Expr::sum("x", "a", Expr::lit(1.0))),
            ),
        );
        assert_eq!(four_nested.loop_depth(), 4);
        assert_eq!(Expr::var("A").loop_depth(), 0);
    }

    #[test]
    fn minus_desugars_to_scalar_multiplication() {
        let e = Expr::lit(1.0).minus(Expr::var("x"));
        assert!(matches!(e, Expr::Add(_, _)));
        assert_eq!(e.size(), 5);
    }

    #[test]
    fn size_counts_apply_arguments() {
        let e = Expr::apply("f", vec![Expr::var("A"), Expr::var("B"), Expr::lit(0.0)]);
        assert_eq!(e.size(), 4);
    }
}
