//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate provides exactly the API subset the workspace uses —
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] and
//! [`Rng::gen_bool`] — with the same call-site syntax as `rand` 0.8.
//!
//! The generator is SplitMix64: deterministic per seed, statistically fine
//! for the seeded test/benchmark workloads here, and **not** the same stream
//! as the real `StdRng` (nothing in the workspace depends on the exact
//! stream, only on determinism per seed).

/// A source of `u64` randomness.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `f64` uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits, as the real rand crate does.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// An RNG that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling from a range, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Scramble the seed once so that consecutive small seeds do not
            // yield correlated opening values.
            let mut rng = StdRng {
                state: seed ^ 0x517C_C1B7_2722_0A95,
            };
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(-3..4);
            assert!((-3..4).contains(&v));
            let w: u64 = rng.gen_range(1..=6);
            assert!((1..=6).contains(&w));
            let f = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&f));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(5);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
