//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate implements the subset of proptest that the workspace's
//! property tests use: integer/float range strategies, `Just`, tuple
//! strategies, `prop_map`, `prop_oneof!`, `proptest::collection::vec`,
//! `any::<bool>()`, the `proptest!` macro with an optional
//! `#![proptest_config(...)]` attribute, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports the assertion failure directly;
//!   the panic message includes the case values via the normal assert output.
//! * **Deterministic.** Each test function derives its RNG seed from its own
//!   name, so failures are reproducible run-over-run.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

pub mod test_runner {
    use super::*;

    /// The random source handed to strategies.
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// Derives a deterministic generator from a test name.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name gives a stable per-test seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }

        pub(crate) fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Per-block configuration, mirroring `proptest::test_runner::ProptestConfig`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A generator of random values, mirroring `proptest::strategy::Strategy`.
    ///
    /// Unlike the real crate there is no value tree and no shrinking: a
    /// strategy simply produces owned values.
    pub trait Strategy {
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy for heterogeneous collections
        /// (`prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (**self).new_value(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Uniform choice among boxed strategies; the engine behind `prop_oneof!`.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let ix = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[ix].new_value(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rand::SampleRange::sample_single(self.clone(), &mut rng.0)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rand::SampleRange::sample_single(self.clone(), &mut rng.0)
                }
            }
        )*};
    }

    range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Types with a canonical strategy, mirroring `proptest::arbitrary::Arbitrary`.
    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical `bool` strategy: a fair coin.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = BoolStrategy;
        fn arbitrary() -> BoolStrategy {
            BoolStrategy
        }
    }

    /// The canonical strategy for `A`, mirroring `proptest::arbitrary::any`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Generates `Vec`s of exactly `len` elements drawn from `element`.
    ///
    /// The real crate accepts any size range; the workspace only ever asks
    /// for exact lengths.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The result of [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Everything a property test needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests. Mirrors `proptest::proptest!` for the
/// `fn name(pat in strategy, ...) { body }` form, with an optional leading
/// `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident ($($pat:pat in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for _ in 0..config.cases {
                    let ($($pat,)*) = ($($crate::strategy::Strategy::new_value(&($strat), &mut rng),)*);
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Mirrors `proptest::prop_assert!`: fails the current case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Mirrors `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Mirrors `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Mirrors `proptest::prop_assume!`: skips the current case when the
/// precondition fails. Must appear directly inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Mirrors `proptest::prop_oneof!`: uniform choice among strategies with a
/// common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn union_draws_every_option() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::test_runner::TestRng::from_name("union_draws_every_option");
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.new_value(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in -5i32..5, b in 0u64..=9, f in -1.0f64..1.0) {
            prop_assert!((-5..5).contains(&a));
            prop_assert!(b <= 9);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_map_and_assume(pair in (0u64..10, 0u64..10).prop_map(|(x, y)| (x, y))) {
            prop_assume!(pair.0 != pair.1);
            prop_assert_ne!(pair.0, pair.1);
        }

        #[test]
        fn collection_vec_has_exact_len(v in crate::collection::vec(0u64..100, 7)) {
            prop_assert_eq!(v.len(), 7);
        }

        #[test]
        fn any_bool_hits_both(x in any::<bool>(), y in any::<bool>()) {
            // Not much to assert case-by-case; the draw itself must not panic.
            let _ = (x, y);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_attribute_parses(v in 0i64..100) {
            prop_assert!((0..100).contains(&v));
        }
    }
}
