//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate mirrors the criterion API surface the benches use —
//! [`Criterion`], [`BenchmarkId`], benchmark groups, `criterion_group!` /
//! `criterion_main!` — on top of a deliberately simple wall-clock harness:
//! each benchmark warms up, then runs batches of iterations until the
//! measurement budget is spent, and reports the mean time per iteration on
//! stdout. There is no statistics engine, no HTML report and no
//! `target/criterion` history; the numbers are indicative, not rigorous.
//!
//! For machine consumption (the CI perf-smoke artifact), setting the
//! `CRITERION_JSON` environment variable to a file path makes every
//! benchmark append one JSON line `{"bench": …, "median_ns": …,
//! "mean_ns": …, "iterations": …}` with the per-sample **median** — more
//! robust than the mean against a single preempted sample on shared CI
//! runners.

use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Harness configuration and entry point, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the untimed warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the timed measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; command-line filtering is not
    /// implemented in this stand-in.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into();
        self.run_one(&label, &mut f);
        self
    }

    fn run_one<F>(&mut self, label: &str, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            mean_ns: 0.0,
            median_ns: 0.0,
            iterations: 0,
        };
        f(&mut bencher);
        println!(
            "bench: {:<60} {:>14} /iter ({} iterations)",
            label,
            format_ns(bencher.mean_ns),
            bencher.iterations
        );
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if !path.is_empty() {
                // Append as JSON lines; a writer failure must not fail the
                // benchmark run itself.
                let line = format!(
                    "{{\"bench\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"iterations\": {}}}",
                    label.replace('\\', "\\\\").replace('"', "\\\""),
                    bencher.median_ns,
                    bencher.mean_ns,
                    bencher.iterations
                );
                let appended = OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                    .and_then(|mut file| writeln!(file, "{line}"));
                if let Err(e) = appended {
                    eprintln!("criterion: could not append to {path}: {e}");
                }
            }
        }
    }
}

/// A named collection of benchmarks sharing a common prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f`, labelling it with `id` under this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        self.criterion.run_one(&label, &mut f);
        self
    }

    /// Benchmarks `f` with an input value, mirroring
    /// `BenchmarkGroup::bench_with_input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        self.criterion
            .run_one(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group. Accepted for API compatibility.
    pub fn finish(self) {}
}

/// A `function-name/parameter` benchmark label.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// Builds an id from a displayed parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Timing driver passed to each benchmark closure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    mean_ns: f64,
    median_ns: f64,
    iterations: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`, recording the mean per-iteration
    /// wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run untimed until the warm-up budget is spent.
        let warm_up_end = Instant::now() + self.warm_up_time;
        let mut warm_up_iters: u64 = 0;
        while Instant::now() < warm_up_end {
            black_box(routine());
            warm_up_iters += 1;
        }

        // Pick a batch size so that `sample_size` samples roughly fill the
        // measurement budget, based on the warm-up rate.
        let per_iter = self.warm_up_time.as_secs_f64() / warm_up_iters.max(1) as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1 << 20);

        let mut total_ns = 0.0;
        let mut total_iters: u64 = 0;
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            total_ns += elapsed;
            total_iters += batch;
            samples.push(elapsed / batch as f64);
            if Instant::now() >= deadline {
                break;
            }
        }

        self.mean_ns = total_ns / total_iters.max(1) as f64;
        self.median_ns = median(&mut samples);
        self.iterations = total_iters;
    }
}

/// The median of per-iteration sample times (0 when no samples ran).
/// Sorts in place; even sample counts average the middle pair.
fn median(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Mirrors `criterion::criterion_group!` in both its plain and
/// `name/config/targets` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Mirrors `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15))
    }

    #[test]
    fn bencher_measures_something() {
        let mut c = fast_criterion();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = fast_criterion();
        let mut group = c.benchmark_group("group");
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("direct", |b| b.iter(|| black_box(2 * 2)));
        group.finish();
    }

    #[test]
    fn median_of_samples() {
        assert_eq!(median(&mut []), 0.0);
        assert_eq!(median(&mut [3.0]), 3.0);
        assert_eq!(median(&mut [5.0, 1.0, 3.0]), 3.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 8.0]), 3.0);
        // A single preempted outlier must not move the median.
        assert_eq!(median(&mut [1.0, 1.0, 1.0, 1.0, 1e9]), 1.0);
    }

    #[test]
    fn json_sink_appends_one_line_per_bench() {
        let path = std::env::temp_dir().join(format!(
            "criterion_json_sink_test_{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        // Env vars are process-global; this is the only test that sets
        // this one, and it unsets it before finishing.
        std::env::set_var("CRITERION_JSON", &path);
        let mut c = fast_criterion();
        c.bench_function("json_sink_test\"quoted\"", |b| b.iter(|| black_box(1 + 1)));
        c.bench_function("json_sink_test_plain", |b| b.iter(|| black_box(2 + 2)));
        std::env::remove_var("CRITERION_JSON");
        let text = std::fs::read_to_string(&path).unwrap();
        // The env var is process-global and the test harness may run other
        // bench-invoking tests concurrently, so filter to this test's
        // uniquely-labelled lines instead of asserting on the whole file.
        let lines: Vec<&str> = text
            .lines()
            .filter(|l| l.contains("json_sink_test"))
            .collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"bench\": \"json_sink_test\\\"quoted\\\"\""));
        assert!(lines[0].contains("\"median_ns\":"));
        assert!(lines[1].contains("\"bench\": \"json_sink_test_plain\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn format_ns_picks_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("us"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with(" s"));
    }

    criterion_group!(plain_group, noop_bench);
    criterion_group! {
        name = configured_group;
        config = fast_criterion();
        targets = noop_bench
    }

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop2", |b| b.iter(|| black_box(0)));
    }

    #[test]
    fn group_macros_expand() {
        // `plain_group` uses the default config (slow-ish); just make sure the
        // configured variant runs and the plain one exists.
        configured_group();
        let _: fn() = plain_group;
    }
}
