//! Crash-recovery smoke test: SIGKILL a durable server mid-burst and
//! prove the restart loses nothing that was acknowledged.
//!
//! The process re-executes itself as a **child** that serves a persisted
//! instance and applies a deterministic update burst over the wire,
//! printing `ACK <k>` only after update `k` has been applied — and, via
//! the fsync'd WAL append inside `UPDATE`, made durable.  The WAL
//! compaction threshold is forced low so snapshots race the burst and
//! the kill can land mid-compaction.  The **parent** SIGKILLs the child
//! after a few hundred acknowledgements, restarts a server on the same
//! data directory, and panics unless the recovered matrix equals the
//! base load plus an *acknowledged-or-later prefix* of the burst — and
//! unless a standing query over it is bit-identical to
//! [`matlang_core::evaluate`] on that same prefix.
//!
//! Run with `cargo run --release --example crash_recovery`.

use matlang::parser::parse;
use matlang::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};

const N: usize = 64;
const BURST: usize = 1_000;
const KILL_AFTER: usize = 300;
const QUERY: &str = "(transpose(G) * (G + G))";

fn base_entries() -> Vec<(usize, usize, f64)> {
    (0..N).map(|i| (i, (i + 1) % N, (i + 1) as f64)).collect()
}

/// Update `k` (1-based) of the deterministic burst.
fn burst_entry(k: usize) -> (usize, usize, f64) {
    ((k * 7) % N, (k * 13 + 1) % N, (k % 97) as f64 + 0.5)
}

/// Child role: serve a durable instance and apply the burst, one fsync'd
/// update per acknowledgement, until killed.
fn run_child(dir: &str) -> ! {
    let handle = Server::spawn(ServerConfig {
        workers: 1,
        // A ~4 KiB compaction threshold forces many snapshot+truncate
        // cycles during the burst, so the SIGKILL can land mid-compaction.
        store: StoreConfig::builder()
            .data_dir(dir)
            .wal_compact(4096)
            .build(),
        ..ServerConfig::default()
    })
    .expect("child: spawn server");
    let mut client = Client::connect(handle.addr()).expect("child: connect");
    client.create_instance("g", true).unwrap();
    client.set_dim("g", "n", N).unwrap();
    client.load("g", "G", N, N, &base_entries()).unwrap();
    client.set_persist("g", true).unwrap();

    let stdout = std::io::stdout();
    for k in 1..=BURST {
        let (i, j, v) = burst_entry(k);
        client.update("g", "G", &[(i, j, v)]).unwrap();
        // The ack is only printed after `update` returned, i.e. after the
        // WAL append was fsync'd: everything acknowledged is durable.
        let mut out = stdout.lock();
        writeln!(out, "ACK {k}").unwrap();
        out.flush().unwrap();
    }
    // Completing the whole burst means the parent was too slow to kill
    // us; recovery below still works, but the test loses its point.
    eprintln!("child: burst completed without being killed");
    std::process::exit(2);
}

/// Applies the first `m` burst updates to the base load.
fn expected_after(m: usize) -> Matrix<Real> {
    let mut dense = Matrix::zeros(N, N);
    for (i, j, v) in base_entries() {
        dense.set(i, j, Real(v)).unwrap();
    }
    for k in 1..=m {
        let (i, j, v) = burst_entry(k);
        dense.set(i, j, Real(v)).unwrap();
    }
    dense
}

fn dense_of(result: &matlang::server::WireResult) -> Matrix<Real> {
    let mut m = Matrix::zeros(result.rows, result.cols);
    for &(i, j, v) in &result.entries {
        m.set(i, j, Real(v)).unwrap();
    }
    m
}

fn main() {
    let dir = std::env::temp_dir().join(format!("matlang-crash-recovery-{}", std::process::id()));
    if let Ok(role_dir) = std::env::var("MATLANG_CRASH_CHILD_DIR") {
        run_child(&role_dir);
    }
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create data dir");

    // Fork the burst workload and kill it mid-flight.
    let exe = std::env::current_exe().expect("current exe");
    let mut child = Command::new(exe)
        .env("MATLANG_CRASH_CHILD_DIR", &dir)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn child");
    let mut acked = 0usize;
    {
        let reader = BufReader::new(child.stdout.take().expect("child stdout"));
        for line in reader.lines() {
            let line = line.expect("read ack");
            if let Some(k) = line
                .strip_prefix("ACK ")
                .and_then(|s| s.parse::<usize>().ok())
            {
                acked = k;
                if acked >= KILL_AFTER {
                    break;
                }
            }
        }
    }
    child.kill().expect("SIGKILL child");
    let _ = child.wait();
    assert!(
        acked >= KILL_AFTER,
        "child died after only {acked} acknowledged updates"
    );
    println!("killed the server after {acked} acknowledged updates");

    // Restart on the same data directory: recovery must surface the
    // instance with every acknowledged update replayed.
    let handle = Server::spawn(ServerConfig {
        workers: 1,
        store: StoreConfig::builder()
            .data_dir(&dir)
            .wal_compact(4096)
            .build(),
        ..ServerConfig::default()
    })
    .expect("restart server");
    let mut client = Client::connect(handle.addr()).expect("reconnect");
    let stat = client.walstat("g").expect("recovered instance");
    assert!(stat.persisted, "recovered instance must stay persisted");

    // The child may have applied (durably) a few updates beyond the last
    // ack it managed to print: the recovered matrix must equal the base
    // plus the first `m` updates for exactly one m in [acked, BURST].
    let recovered = dense_of(&client.query("g", "G").expect("query G"));
    let matched = (acked..=BURST).find(|&m| expected_after(m) == recovered);
    let m = matched.unwrap_or_else(|| {
        panic!("recovered state matches no acknowledged-or-later burst prefix (acked {acked})")
    });
    println!("recovered state = base + first {m} updates (acked {acked})");

    // And the standing query over the recovered instance is bit-identical
    // to core::evaluate on that prefix.
    let local = Instance::new()
        .with_dim("n", N)
        .with_matrix("G", expected_after(m));
    let expected = evaluate(
        &parse(QUERY).unwrap(),
        &local,
        &FunctionRegistry::standard_field(),
    )
    .unwrap();
    let answer = dense_of(&client.query("g", QUERY).expect("standing query"));
    assert_eq!(
        answer, expected,
        "recovered query diverged from core::evaluate"
    );
    println!("standing query bit-identical to core::evaluate after recovery ✓");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
