//! Reachability on a 10 000-node sparse random graph — a workload that is
//! practical only with the sparse subsystem.
//!
//! The graph has average out-degree 8, i.e. ~80 000 edges out of 100 million
//! possible: density 0.0008.  Storing it densely would materialise 10⁸
//! entries, and one dense matrix product would cost Θ(n³) = 10¹² semiring
//! operations; the CSR kernels touch only the non-zeros.
//!
//! The reachability query itself is the MATLANG frontier iteration
//! `x ← x + Gᵀ·x` starting from a canonical vector `b_s`: evaluated to a
//! fixpoint it yields exactly the vertices reachable from `s`.  Each step is
//! one evaluator call over the adaptive sparse backend
//! ([`SparseInstance`]); the result is cross-checked against a native BFS on
//! the CSR structure.
//!
//! Run with `cargo run --release --example sparse_reachability`.

use matlang::algorithms::baseline;
use matlang::prelude::*;
use std::time::Instant;

fn main() {
    let n = 10_000;
    let avg_degree = 8.0;
    let source = 0;

    let start = Instant::now();
    let adjacency: SparseMatrix<Boolean> = sparse_erdos_renyi(n, avg_degree, 0xC0FFEE);
    println!(
        "graph: {n} vertices, {} edges (density {:.6}), generated in {:?}",
        adjacency.nnz(),
        adjacency.density(),
        start.elapsed()
    );
    println!(
        "dense equivalent would hold {} entries; one dense matmul ≈ {:.0e} semiring ops",
        n * n,
        (n as f64).powi(3)
    );

    // ------------------------------------------------------------------
    // Frontier iteration through the backend-aware evaluator.
    // ------------------------------------------------------------------
    let instance: SparseInstance<Boolean> = Instance::new()
        .with_dim("n", n)
        .with_matrix("G", MatrixRepr::from_sparse_auto(adjacency.clone()));
    let registry: FunctionRegistry<Boolean> = FunctionRegistry::new();
    // x + Gᵀ·x: current frontier plus everything one edge downstream.
    let step = Expr::var("x").add(Expr::var("G").t().mm(Expr::var("x")));

    let start = Instant::now();
    let mut reach =
        MatrixRepr::from_sparse_auto(SparseMatrix::canonical(n, source).expect("source in bounds"));
    let mut rounds = 0;
    loop {
        let mut env = std::collections::HashMap::new();
        env.insert("x".to_string(), reach.clone());
        let next = evaluate_with_env(&step, &instance, &registry, &env).expect("evaluation");
        rounds += 1;
        if next == reach {
            break;
        }
        reach = next;
    }
    let eval_elapsed = start.elapsed();
    println!(
        "evaluator fixpoint after {rounds} rounds in {eval_elapsed:?} \
         ({} vertices reachable from {source}, stored {})",
        reach.nnz(),
        reach.backend_name()
    );

    // ------------------------------------------------------------------
    // Native BFS on the CSR structure as ground truth.
    // ------------------------------------------------------------------
    let start = Instant::now();
    let bfs = baseline::sparse_reachable_from(&adjacency, source);
    let bfs_elapsed = start.elapsed();
    let bfs_count = bfs.iter().filter(|&&r| r).count();
    println!("native BFS in {bfs_elapsed:?} ({bfs_count} vertices reachable)");

    // The evaluator's fixpoint and the BFS must agree vertex by vertex.
    let dense_reach = reach.to_dense();
    for (v, &reached) in bfs.iter().enumerate() {
        let via_eval = !dense_reach.get(v, 0).expect("in bounds").is_zero();
        assert_eq!(
            via_eval, reached,
            "evaluator and BFS disagree on vertex {v}"
        );
    }
    println!("evaluator result matches native BFS on all {n} vertices ✔");
}
