//! Numerical linear algebra expressed in for-MATLANG (Section 4 of the
//! paper): LU decomposition, determinants and matrix inversion via Csanky's
//! algorithm, and solving a linear system `A·x = b`, all cross-checked
//! against direct Rust implementations.
//!
//! Run with `cargo run --example linear_solver`.

use matlang::algorithms::{baseline, csanky, lu, standard_registry, triangular};
use matlang::prelude::*;

fn main() {
    let n = 6;
    let a: Matrix<Real> = random_invertible(n, 7);
    let instance = Instance::new().with_dim("n", n).with_matrix("A", a.clone());
    let registry = standard_registry::<Real>();

    // ------------------------------------------------------------------
    // LU decomposition (Proposition 4.1).
    // ------------------------------------------------------------------
    let l = evaluate(&lu::lower_factor("A", "n"), &instance, &registry).unwrap();
    let u = evaluate(&lu::upper_factor("A", "n"), &instance, &registry).unwrap();
    assert!(
        l.matmul(&u).unwrap().approx_eq(&a, 1e-8),
        "L·U must reconstruct A"
    );
    let (l_base, u_base) = baseline::lu_decompose(&a).unwrap();
    assert!(l.approx_eq(&l_base, 1e-8) && u.approx_eq(&u_base, 1e-8));
    println!("LU decomposition (for-MATLANG[f_/])            : L·U = A, matches baseline");

    // ------------------------------------------------------------------
    // Solving A·x = b through the decomposition: forward/back substitution
    // is just triangular inversion (Lemma C.1) inside the language.
    // ------------------------------------------------------------------
    let b: Matrix<Real> = random_vector(n, &RandomMatrixConfig::seeded(99));
    let solve = triangular::upper_triangular_inverse(lu::upper_factor("A", "n"), "n")
        .mm(triangular::lower_triangular_inverse(
            lu::lower_factor("A", "n"),
            "n",
        ))
        .mm(Expr::var("b"));
    let instance_with_b = instance.clone().with_matrix("b", b.clone());
    let x = evaluate(&solve, &instance_with_b, &registry).unwrap();
    let residual = a.matmul(&x).unwrap();
    assert!(residual.approx_eq(&b, 1e-6), "A·x should reproduce b");
    println!(
        "linear system A·x = b via U⁻¹·L⁻¹·b            : max residual {:.2e}",
        max_abs_diff(&residual, &b)
    );

    // ------------------------------------------------------------------
    // Determinant and inverse via Csanky's algorithm (Proposition 4.3).
    // ------------------------------------------------------------------
    let small = 4;
    let a_small: Matrix<Real> = random_invertible(small, 11);
    let small_instance = Instance::new()
        .with_dim("n", small)
        .with_matrix("A", a_small.clone());

    let det = evaluate(&csanky::determinant("A", "n"), &small_instance, &registry)
        .unwrap()
        .as_scalar()
        .unwrap();
    let det_base = a_small.determinant().unwrap();
    println!(
        "Csanky determinant                              : {:.6} (baseline {:.6})",
        det.0, det_base.0
    );
    assert!((det.0 - det_base.0).abs() / det_base.0.abs().max(1.0) < 1e-6);

    let inv = evaluate(&csanky::inverse("A", "n"), &small_instance, &registry).unwrap();
    let inv_base = a_small.inverse().unwrap();
    assert!(inv.approx_eq(&inv_base, 1e-6));
    assert!(a_small
        .matmul(&inv)
        .unwrap()
        .approx_eq(&Matrix::identity(small), 1e-6));
    println!("Csanky inverse                                  : A·A⁻¹ = I, matches Gauss–Jordan");

    // ------------------------------------------------------------------
    // PLU decomposition on a matrix that genuinely needs pivoting
    // (Proposition 4.2).
    // ------------------------------------------------------------------
    let pivot_needed: Matrix<Real> =
        Matrix::from_f64_rows(&[&[0.0, 2.0, 1.0], &[1.0, 0.0, 3.0], &[4.0, 5.0, 0.0]]).unwrap();
    let piv_instance = Instance::new()
        .with_dim("n", 3)
        .with_matrix("A", pivot_needed.clone());
    let m = evaluate(&lu::l_inverse_pivoted("A", "n"), &piv_instance, &registry).unwrap();
    let u_piv = evaluate(
        &lu::upper_factor_pivoted("A", "n"),
        &piv_instance,
        &registry,
    )
    .unwrap();
    assert!(m.matmul(&pivot_needed).unwrap().approx_eq(&u_piv, 1e-9));
    println!("PLU decomposition with pivoting                 : L⁻¹·P·A = U (upper triangular)");
    println!("\nall for-MATLANG results agree with the native baselines");
}

fn max_abs_diff(a: &Matrix<Real>, b: &Matrix<Real>) -> f64 {
    a.entries()
        .iter()
        .zip(b.entries())
        .map(|(x, y)| (x.0 - y.0).abs())
        .fold(0.0, f64::max)
}
