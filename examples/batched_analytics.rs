//! Batched graph analytics through the query-planning engine.
//!
//! One 10 000-node sparse graph, five analytics queries — walk-count
//! reachability, triangle counting and degree statistics — planned and
//! executed as a single batch: the engine hash-conses the queries into one
//! DAG, so shared subterms (`G·1`, `G²`, `G³`) are computed once for the
//! whole batch, and the per-query plan-cache hit counts below show exactly
//! how much work each query inherited from its predecessors.
//!
//! Run with `cargo run --release --example batched_analytics`.
//! `MATLANG_THREADS` controls the worker count for heavy products.

use matlang::engine::Engine;
use matlang::prelude::*;
use std::time::Instant;

fn main() {
    let n = 10_000;
    let avg_degree = 8.0;
    let build = Instant::now();
    let graph: SparseMatrix<Nat> = sparse_erdos_renyi(n, avg_degree, 2021);
    let instance: SparseInstance<Nat> = Instance::new()
        .with_dim("n", n)
        .with_matrix("G", MatrixRepr::from_sparse_auto(graph));
    let g = instance.matrix("G").unwrap();
    println!(
        "graph: n = {n}, nnz = {} (density {:.5}), built in {:?}",
        g.nnz(),
        g.density(),
        build.elapsed()
    );
    println!(
        "threads: {} (MATLANG_THREADS overrides)\n",
        configured_threads()
    );

    // The query mix.  `G²` and `G³` are shared across three queries; the
    // planner computes each power once for the whole batch.
    let gv = || Expr::var("G");
    let ones = || gv().ones();
    let g2 = || gv().mm(gv());
    let g3 = || g2().mm(gv());
    let queries: Vec<(&str, Expr)> = vec![
        ("total-degree 1ᵀG1", ones().t().mm(gv()).mm(ones())),
        ("two-hop walks 1ᵀG²1", ones().t().mm(g2()).mm(ones())),
        (
            "≤3-hop walk reachability 1ᵀ(G+G²+G³)1",
            ones().t().mm(gv().add(g2()).add(g3())).mm(ones()),
        ),
        (
            "triangle count tr(G³)/6",
            Expr::sum("v", "n", Expr::var("v").t().mm(g3()).mm(Expr::var("v"))),
        ),
        (
            "degree sum-of-squares (G1)ᵀ(G1)",
            gv().mm(ones()).t().mm(gv().mm(ones())),
        ),
    ];

    let exprs: Vec<Expr> = queries.iter().map(|(_, e)| e.clone()).collect();
    let engine = Engine::new();
    let registry = FunctionRegistry::<Nat>::new();

    let plan_started = Instant::now();
    let plan = engine.plan(&exprs, &instance);
    println!("plan ({:?}): {}\n", plan_started.elapsed(), plan.report);

    let run_started = Instant::now();
    let outcome = engine.evaluate_batch(&exprs, &instance, &registry);
    let total_elapsed = run_started.elapsed();

    for ((name, _), (result, stats)) in queries
        .iter()
        .zip(outcome.results.iter().zip(&outcome.per_query))
    {
        let value = result
            .as_ref()
            .expect("analytics query failed")
            .as_scalar()
            .expect("analytics queries are scalar")
            .to_f64();
        let shown = if name.contains("triangle") {
            value / 6.0
        } else {
            value
        };
        println!(
            "{name:45} = {shown:>14.0}   cache: {:>5} hits / {:>4} misses",
            stats.cache_hits, stats.cache_misses
        );
    }
    println!(
        "\nbatch total: {:?} · {} · shared cache answered {} of {} node evaluations",
        total_elapsed,
        outcome.stats,
        outcome.stats.cache_hits,
        outcome.stats.cache_hits + outcome.stats.cache_misses,
    );
}
