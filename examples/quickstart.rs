//! Quickstart: build, type check, classify, print, parse and evaluate
//! for-MATLANG expressions over several semirings.
//!
//! Run with `cargo run --example quickstart`.

use matlang::parser::parse;
use matlang::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. Build an expression: the trace  Σv. vᵀ·A·v  (a sum-MATLANG query).
    // ------------------------------------------------------------------
    let trace = Expr::sum(
        "v",
        "n",
        Expr::var("v").t().mm(Expr::var("A")).mm(Expr::var("v")),
    );
    println!("expression      : {trace}");
    println!("fragment        : {}", fragment_of(&trace));

    // ------------------------------------------------------------------
    // 2. Type check it against a schema: A is a square matrix of type (n, n).
    // ------------------------------------------------------------------
    let schema = Schema::new().with_var("A", MatrixType::square("n"));
    let ty = typecheck(&trace, &schema).expect("the trace is well-typed");
    println!("type            : {ty}");

    // ------------------------------------------------------------------
    // 3. Evaluate it over the reals.
    // ------------------------------------------------------------------
    let a: Matrix<Real> =
        Matrix::from_f64_rows(&[&[1.0, 9.0, 9.0], &[9.0, 2.0, 9.0], &[9.0, 9.0, 3.0]]).unwrap();
    let instance = Instance::new().with_dim("n", 3).with_matrix("A", a);
    let registry: FunctionRegistry<Real> = FunctionRegistry::standard_field();
    let result = evaluate(&trace, &instance, &registry).unwrap();
    println!("trace over ℝ    : {}", result.as_scalar().unwrap());

    // ------------------------------------------------------------------
    // 4. The same expression over other semirings (Section 6 of the paper).
    // ------------------------------------------------------------------
    let bool_adj: Matrix<Boolean> = Matrix::from_f64_rows(&[&[0.0, 1.0], &[1.0, 1.0]]).unwrap();
    let bool_instance = Instance::new().with_dim("n", 2).with_matrix("A", bool_adj);
    let bool_registry: FunctionRegistry<Boolean> = FunctionRegistry::new();
    let any_self_loop = evaluate(&trace, &bool_instance, &bool_registry).unwrap();
    println!(
        "trace over 𝔹    : {} (is there a self loop?)",
        any_self_loop.as_scalar().unwrap()
    );

    let nat_adj: Matrix<Nat> =
        Matrix::from_rows(vec![vec![Nat(2), Nat(0)], vec![Nat(0), Nat(5)]]).unwrap();
    let nat_instance = Instance::new().with_dim("n", 2).with_matrix("A", nat_adj);
    let nat_registry: FunctionRegistry<Nat> = FunctionRegistry::new();
    let counted = evaluate(&trace, &nat_instance, &nat_registry).unwrap();
    println!("trace over ℕ    : {}", counted.as_scalar().unwrap());

    // ------------------------------------------------------------------
    // 5. The textual syntax round-trips through the parser.
    // ------------------------------------------------------------------
    let reparsed = parse(&trace.to_string()).unwrap();
    assert_eq!(reparsed, trace);
    println!("parser roundtrip: ok");

    // ------------------------------------------------------------------
    // 6. A genuinely recursive query: the one-vector via a for-loop
    //    (Example 3.1 of the paper) — inexpressible without iteration.
    // ------------------------------------------------------------------
    let ones = Expr::for_loop(
        "v",
        "n",
        "X",
        MatrixType::vector("n"),
        Expr::var("X").add(Expr::var("v")),
    );
    println!("for-loop        : {ones}");
    println!("fragment        : {}", fragment_of(&ones));
    let ones_value = evaluate(&ones, &instance, &registry).unwrap();
    println!("evaluates to    :\n{ones_value}");
}
