//! The MATLANG query server end to end: spawn it in-process, then drive a
//! client workload of mixed `EXEC`/`UPDATE` traffic over a mutating graph.
//!
//! The demo holds three **standing analytics queries** prepared over a
//! 2 000-node random graph and interleaves executions with incremental
//! edge updates.  Watch the cache columns: an `UPDATE G …` drops exactly
//! the plan nodes depending on `G`, so the next execution of each standing
//! query recomputes only its dirty subgraph — and queries over the
//! untouched `W` matrix keep answering from cache with zero misses.
//!
//! Run with `cargo run --release --example server_demo`.
//! `MATLANG_THREADS` controls both the session worker count and the
//! kernel worker pool.

use matlang::prelude::*;
use std::time::Instant;

fn main() {
    let n = 2_000;
    let handle = Server::spawn(ServerConfig::default()).expect("spawn server");
    println!(
        "server listening on {} · {} session workers\n",
        handle.addr(),
        configured_threads().max(1)
    );

    let mut client = Client::connect(handle.addr()).expect("connect");
    client.create_instance("g", true).unwrap();
    client.set_dim("g", "n", n).unwrap();
    let g_nnz = client.gen_erdos_renyi("g", "G", "n", 8.0, 2021).unwrap();
    let w_nnz = client.gen_erdos_renyi("g", "W", "n", 4.0, 2022).unwrap();
    println!("instance `g`: n = {n}, G nnz = {g_nnz}, W nnz = {w_nnz}");

    // Three standing queries — two over G, one over W — batch-planned into
    // one DAG with a shared persistent cache.
    let queries = [
        ("total degree  1ᵀG1", "(transpose(ones(G)) * (G * ones(G)))"),
        (
            "two-hop walks 1ᵀG²1",
            "(transpose(ones(G)) * ((G * G) * ones(G)))",
        ),
        ("W edge weight 1ᵀW1", "(transpose(ones(W)) * (W * ones(W)))"),
    ];
    let qids: Vec<usize> = queries
        .iter()
        .map(|(_, text)| client.prepare("g", text).unwrap())
        .collect();
    println!("prepared {} standing queries\n", qids.len());

    let exec_round = |label: &str, client: &mut Client| {
        println!("-- {label}");
        for ((name, _), &qid) in queries.iter().zip(&qids) {
            let started = Instant::now();
            let result = client.exec("g", qid).unwrap();
            let value = result.entries.first().map(|&(_, _, v)| v).unwrap_or(0.0);
            println!(
                "   {name:22} = {value:>12.0}   {:>4} hits / {:>3} misses   {:?}",
                result.stats.cache_hits,
                result.stats.cache_misses,
                started.elapsed()
            );
        }
    };

    exec_round("cold start: every query computes", &mut client);
    exec_round(
        "steady state: answered from the persistent cache",
        &mut client,
    );

    // Mutate G: add a clique among the first 8 nodes, incremental updates.
    let mut edges = Vec::new();
    for i in 0..8usize {
        for j in 0..8usize {
            if i != j {
                edges.push((i, j, 1.0));
            }
        }
    }
    let started = Instant::now();
    let reply = client.update("g", "G", &edges).unwrap();
    println!(
        "\nUPDATE G: {} edges applied, {} dependent cache entries \
         invalidated in {:?} ({:?}) — W-dependent entries untouched\n",
        reply.applied,
        reply.invalidated,
        started.elapsed(),
        reply.delta,
    );
    exec_round(
        "after UPDATE G: G-queries recompute, the W-query stays warm",
        &mut client,
    );

    // A burst of mixed traffic: interleaved point updates and executions.
    let started = Instant::now();
    let rounds = 50;
    for round in 0..rounds {
        let node = 8 + (round % 512);
        client
            .update("g", "G", &[(node, (node * 7 + 1) % n, 1.0)])
            .unwrap();
        for &qid in &qids {
            client.exec("g", qid).unwrap();
        }
    }
    let elapsed = started.elapsed();
    println!(
        "\nmixed burst: {rounds} rounds of 1 UPDATE + {} EXECs in {elapsed:?} \
         ({:.0} requests/s)",
        qids.len(),
        (rounds * (1 + qids.len())) as f64 / elapsed.as_secs_f64()
    );

    // Delta maintenance: the same standing-query idea over a Boolean
    // instance, where an edge insert is an exact delta — the prepared
    // query is *patched*, never recomputed.
    client
        .create_instance_with("reach", true, SemiringKind::Boolean)
        .unwrap();
    client.set_dim("reach", "n", n).unwrap();
    client
        .gen_erdos_renyi("reach", "G", "n", 8.0, 2023)
        .unwrap();
    let two_hop = client.prepare("reach", "(G * G)").unwrap();
    client.exec("reach", two_hop).unwrap(); // warm
    let started = Instant::now();
    let reply = client
        .update("reach", "G", &[(0, 1, 1.0), (1, 2, 1.0)])
        .unwrap();
    let warm = client.exec("reach", two_hop).unwrap();
    println!(
        "\nBoolean instance: UPDATE+EXEC in {:?} ({:?}), {} cache misses — \
         the insert was delta-propagated, the standing query never recomputed",
        started.elapsed(),
        reply.delta,
        warm.stats.cache_misses
    );

    // Introspection: EXPLAIN renders the rewritten plan without running
    // it, and METRICS scrapes the process-wide registry (the same text a
    // Prometheus agent would pull).  Re-preparing a standing query first
    // gives the plan cache a guaranteed hit to show off.
    client.prepare("g", queries[0].1).unwrap();
    let explain = client.explain("g", "(transpose(G) * (G + G))").unwrap();
    println!("\nEXPLAIN (transpose(G) * (G + G)):");
    for line in explain.iter().take(8) {
        println!("   {line}");
    }

    // The typed METRICS accessor: counters and gauges as a name → value
    // map, no string-grepping of the exposition text.
    let metrics = client.metrics_map().unwrap();
    let sample = |name: &str| -> f64 {
        *metrics
            .get(name)
            .unwrap_or_else(|| panic!("metric {name} missing from METRICS scrape"))
    };
    let exec_total = sample("exec_total");
    let delta_applied = sample("delta_applied_total");
    let plan_hits = sample("plan_cache_hits_total");
    assert!(
        exec_total > 0.0,
        "exec_total must be nonzero after the demo"
    );
    assert!(
        delta_applied > 0.0,
        "the Boolean insert must count as an applied delta"
    );
    assert!(
        plan_hits > 0.0,
        "the re-prepare must count as a plan cache hit"
    );
    println!(
        "\nMETRICS: exec_total={exec_total} delta_applied_total={delta_applied} \
         plan_cache_hits_total={plan_hits}"
    );

    // STATS: the feedback loop's view of instance `g` — planned vs.
    // current vs. observed nnz per variable, drift, re-plan counters.
    let stats = client.stats("g").unwrap();
    println!("\nSTATS g:");
    for line in stats.iter().take(6) {
        println!("   {line}");
    }

    // Slow-query forensics: zero the slow threshold for one EXEC so it
    // lands in the slowlog with its plan + per-node observations, then
    // restore the environment-driven default.
    matlang::obs::trace::set_slow_ms(0);
    let slow = client.exec("g", qids[1]).unwrap();
    matlang::obs::trace::set_slow_ms(matlang::obs::trace::SLOW_MS_UNSET);
    let slowlog = client.slowlog(Some(8)).unwrap();
    let entry = slowlog
        .iter()
        .find(|e| e.trace_id == slow.trace)
        .expect("the zero-threshold EXEC must land in the slowlog");
    assert!(
        !entry.detail.is_empty(),
        "slowlog forensics must capture the plan and observations"
    );
    println!(
        "\nSLOWLOG: {} entries; slowest `{}` took {}us, {} forensic lines:",
        slowlog.len(),
        entry.label,
        entry.total_us,
        entry.detail.len()
    );
    for line in entry.detail.iter().take(4) {
        println!("   {line}");
    }

    // Windowed metrics: the typed scrape above recorded a baseline
    // snapshot into the window ring, so a WINDOW query now reports the
    // traffic since then (the slowlog EXEC, at least) as deltas/rates.
    let window = client.metrics_window(3600).unwrap();
    for line in window
        .lines()
        .filter(|l| l.starts_with("# window") || l.starts_with("exec_total_"))
    {
        println!("METRICS WINDOW: {line}");
    }
    assert!(
        window
            .lines()
            .any(|l| l.starts_with("exec_total_delta") && !l.ends_with(" 0")),
        "the slowlog EXEC must show up in the metrics window"
    );

    // Capacity & health: HEALTH answers readiness against the soft memory
    // budget (`MATLANG_MEM_BUDGET`, unset here → no pressure), TOP ranks
    // instances by attributed bytes, and TRACE EXPORT dumps the trace
    // ring as Chrome-tracing JSON for chrome://tracing or Perfetto.
    let health = client.health().unwrap();
    assert!(
        health.starts_with("status=ok"),
        "HEALTH must report ok with no budget set, got `{health}`"
    );
    println!("\nHEALTH: {health}");
    let top = client.top(Some(4)).unwrap();
    for line in &top {
        println!("TOP: {line}");
    }
    let top_bytes: u64 = top
        .iter()
        .flat_map(|l| l.split_whitespace())
        .filter_map(|tok| tok.strip_prefix("bytes="))
        .filter_map(|v| v.parse::<u64>().ok())
        .sum();
    assert!(
        top_bytes > 0,
        "TOP must attribute nonzero bytes to the demo instances"
    );
    let metrics = client.metrics_map().unwrap();
    assert!(
        metrics.get("instance_bytes").copied().unwrap_or(0.0) > 0.0,
        "the aggregate instance_bytes gauge must be nonzero"
    );
    let trace_json = client.trace_export(Some(16)).unwrap();
    assert!(
        trace_json.trim_start().starts_with('[') && trace_json.contains("\"ph\":\"X\""),
        "TRACE EXPORT must produce Chrome-trace JSON (array format)"
    );
    println!(
        "TRACE EXPORT: {} bytes of Chrome-trace JSON covering the newest traces",
        trace_json.len()
    );

    client.quit().unwrap();
    handle.shutdown();
    println!("server shut down cleanly");
}
