//! The MATLANG query server end to end: spawn it in-process, then drive a
//! client workload of mixed `EXEC`/`UPDATE` traffic over a mutating graph.
//!
//! The demo holds three **standing analytics queries** prepared over a
//! 2 000-node random graph and interleaves executions with incremental
//! edge updates.  Watch the cache columns: an `UPDATE G …` drops exactly
//! the plan nodes depending on `G`, so the next execution of each standing
//! query recomputes only its dirty subgraph — and queries over the
//! untouched `W` matrix keep answering from cache with zero misses.
//!
//! Run with `cargo run --release --example server_demo`.
//! `MATLANG_THREADS` controls both the session worker count and the
//! kernel worker pool.

use matlang::prelude::*;
use std::time::Instant;

fn main() {
    let n = 2_000;
    let handle = Server::spawn(ServerConfig::default()).expect("spawn server");
    println!(
        "server listening on {} · {} session workers\n",
        handle.addr(),
        configured_threads().max(1)
    );

    let mut client = Client::connect(handle.addr()).expect("connect");
    client.create_instance("g", true).unwrap();
    client.set_dim("g", "n", n).unwrap();
    let g_nnz = client.gen_erdos_renyi("g", "G", "n", 8.0, 2021).unwrap();
    let w_nnz = client.gen_erdos_renyi("g", "W", "n", 4.0, 2022).unwrap();
    println!("instance `g`: n = {n}, G nnz = {g_nnz}, W nnz = {w_nnz}");

    // Three standing queries — two over G, one over W — batch-planned into
    // one DAG with a shared persistent cache.
    let queries = [
        ("total degree  1ᵀG1", "(transpose(ones(G)) * (G * ones(G)))"),
        (
            "two-hop walks 1ᵀG²1",
            "(transpose(ones(G)) * ((G * G) * ones(G)))",
        ),
        ("W edge weight 1ᵀW1", "(transpose(ones(W)) * (W * ones(W)))"),
    ];
    let qids: Vec<usize> = queries
        .iter()
        .map(|(_, text)| client.prepare("g", text).unwrap())
        .collect();
    println!("prepared {} standing queries\n", qids.len());

    let exec_round = |label: &str, client: &mut Client| {
        println!("-- {label}");
        for ((name, _), &qid) in queries.iter().zip(&qids) {
            let started = Instant::now();
            let result = client.exec("g", qid).unwrap();
            let value = result.entries.first().map(|&(_, _, v)| v).unwrap_or(0.0);
            println!(
                "   {name:22} = {value:>12.0}   {:>4} hits / {:>3} misses   {:?}",
                result.stats.cache_hits,
                result.stats.cache_misses,
                started.elapsed()
            );
        }
    };

    exec_round("cold start: every query computes", &mut client);
    exec_round(
        "steady state: answered from the persistent cache",
        &mut client,
    );

    // Mutate G: add a clique among the first 8 nodes, incremental updates.
    let mut edges = Vec::new();
    for i in 0..8usize {
        for j in 0..8usize {
            if i != j {
                edges.push((i, j, 1.0));
            }
        }
    }
    let started = Instant::now();
    let reply = client.update("g", "G", &edges).unwrap();
    println!(
        "\nUPDATE G: {} edges applied, {} dependent cache entries \
         invalidated in {:?} ({:?}) — W-dependent entries untouched\n",
        reply.applied,
        reply.invalidated,
        started.elapsed(),
        reply.delta,
    );
    exec_round(
        "after UPDATE G: G-queries recompute, the W-query stays warm",
        &mut client,
    );

    // A burst of mixed traffic: interleaved point updates and executions.
    let started = Instant::now();
    let rounds = 50;
    for round in 0..rounds {
        let node = 8 + (round % 512);
        client
            .update("g", "G", &[(node, (node * 7 + 1) % n, 1.0)])
            .unwrap();
        for &qid in &qids {
            client.exec("g", qid).unwrap();
        }
    }
    let elapsed = started.elapsed();
    println!(
        "\nmixed burst: {rounds} rounds of 1 UPDATE + {} EXECs in {elapsed:?} \
         ({:.0} requests/s)",
        qids.len(),
        (rounds * (1 + qids.len())) as f64 / elapsed.as_secs_f64()
    );

    // Delta maintenance: the same standing-query idea over a Boolean
    // instance, where an edge insert is an exact delta — the prepared
    // query is *patched*, never recomputed.
    client
        .create_instance_with("reach", true, SemiringKind::Boolean)
        .unwrap();
    client.set_dim("reach", "n", n).unwrap();
    client
        .gen_erdos_renyi("reach", "G", "n", 8.0, 2023)
        .unwrap();
    let two_hop = client.prepare("reach", "(G * G)").unwrap();
    client.exec("reach", two_hop).unwrap(); // warm
    let started = Instant::now();
    let reply = client
        .update("reach", "G", &[(0, 1, 1.0), (1, 2, 1.0)])
        .unwrap();
    let warm = client.exec("reach", two_hop).unwrap();
    println!(
        "\nBoolean instance: UPDATE+EXEC in {:?} ({:?}), {} cache misses — \
         the insert was delta-propagated, the standing query never recomputed",
        started.elapsed(),
        reply.delta,
        warm.stats.cache_misses
    );

    // Introspection: EXPLAIN renders the rewritten plan without running
    // it, and METRICS scrapes the process-wide registry (the same text a
    // Prometheus agent would pull).  Re-preparing a standing query first
    // gives the plan cache a guaranteed hit to show off.
    client.prepare("g", queries[0].1).unwrap();
    let explain = client.explain("g", "(transpose(G) * (G + G))").unwrap();
    println!("\nEXPLAIN (transpose(G) * (G + G)):");
    for line in explain.iter().take(8) {
        println!("   {line}");
    }

    let metrics = client.metrics().unwrap();
    let scrape = |name: &str| -> f64 {
        metrics
            .lines()
            .find(|l| l.split_whitespace().next() == Some(name))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("metric {name} missing from METRICS scrape"))
    };
    let exec_total = scrape("exec_total");
    let delta_applied = scrape("delta_applied_total");
    let plan_hits = scrape("plan_cache_hits_total");
    assert!(
        exec_total > 0.0,
        "exec_total must be nonzero after the demo"
    );
    assert!(
        delta_applied > 0.0,
        "the Boolean insert must count as an applied delta"
    );
    assert!(
        plan_hits > 0.0,
        "the re-prepare must count as a plan cache hit"
    );
    println!(
        "\nMETRICS: exec_total={exec_total} delta_applied_total={delta_applied} \
         plan_cache_hits_total={plan_hits} exec p99={}us",
        metrics
            .lines()
            .find(|l| l.starts_with("exec_latency_us{quantile=\"0.99\"}"))
            .and_then(|l| l.split_whitespace().nth(1))
            .unwrap_or("?")
    );

    client.quit().unwrap();
    handle.shutdown();
    println!("server shut down cleanly");
}
