//! A tour of Figure 1 of the paper: the fragments of for-MATLANG and their
//! equivalent formalisms.
//!
//! * sum-MATLANG ≡ RA⁺_K (Corollary 6.5) — demonstrated by translating a
//!   query in both directions and comparing results.
//! * FO-MATLANG ≡ weighted logics (Proposition 6.7) — same, with a weighted
//!   structure.
//! * for-MATLANG ≡ arithmetic circuits (Section 5) — an expression is
//!   compiled to a circuit family and degrees are inspected.
//!
//! Run with `cargo run --example language_tour`.

use matlang::algorithms::graphs;
use matlang::circuits::{circuit_to_expr, expr_to_circuit};
use matlang::prelude::*;
use matlang::ra::{encode_instance, matlang_to_ra, ra_to_matlang, RaExpr, RaSchema};
use matlang::wl::{encode_instance_as_structure, matlang_to_wl, WlFormula};
use std::collections::HashMap;

fn main() {
    // A small weighted digraph shared by all three demonstrations.
    let n = 4;
    let adjacency: Matrix<Nat> = Matrix::from_rows(vec![
        vec![Nat(0), Nat(2), Nat(0), Nat(1)],
        vec![Nat(0), Nat(0), Nat(3), Nat(0)],
        vec![Nat(1), Nat(0), Nat(0), Nat(4)],
        vec![Nat(0), Nat(5), Nat(0), Nat(0)],
    ])
    .unwrap();
    let schema = Schema::new().with_var("G", MatrixType::square("n"));
    let instance = Instance::new()
        .with_dim("n", n)
        .with_matrix("G", adjacency.clone());
    let registry: FunctionRegistry<Nat> = FunctionRegistry::new().with_semiring_ops();

    // ------------------------------------------------------------------
    // Level 1 of Figure 1 — sum-MATLANG ≡ RA⁺_K.
    // ------------------------------------------------------------------
    println!("== sum-MATLANG ≡ RA⁺_K (Corollary 6.5) ==");
    let two_hop_ml = Expr::sum(
        "v",
        "n",
        Expr::sum(
            "w",
            "n",
            Expr::var("v")
                .t()
                .mm(Expr::var("G"))
                .mm(Expr::var("w"))
                .smul(Expr::var("w").t())
                .mm(Expr::var("G")),
        ),
    );
    println!("sum-MATLANG query   : {two_hop_ml}");
    println!("fragment            : {}", fragment_of(&two_hop_ml));
    let direct = evaluate(&two_hop_ml, &instance, &registry).unwrap();

    let ra_query = matlang_to_ra(&two_hop_ml, &schema).unwrap();
    let database = encode_instance(&schema, &instance).unwrap();
    let via_ra = ra_query.evaluate(&database).unwrap();
    println!("Φ(e) support size   : {}", via_ra.support_size());
    println!(
        "⟦e⟧(I)[0][1] = {:?}  /  ⟦Φ(e)⟧(Rel(I))(1,2) = {:?}",
        direct.get(0, 1).unwrap(),
        via_ra.annotation(&[("col_n", 2), ("row_n", 1)])
    );

    // And back: an RA⁺_K query over a binary schema into sum-MATLANG.
    let two_hop_ra = RaExpr::rel("E")
        .join(RaExpr::rel("E").rename(&[("src", "dst"), ("dst", "tgt")]))
        .project(&["src", "tgt"]);
    let ra_schema = RaSchema::new().with_relation("E", ["src", "dst"]);
    let back = ra_to_matlang(&two_hop_ra, &ra_schema, "n").unwrap();
    println!("Ψ(two-hop) fragment : {}", fragment_of(&back));

    // ------------------------------------------------------------------
    // Level 2 of Figure 1 — FO-MATLANG ≡ weighted logics.
    // ------------------------------------------------------------------
    println!("\n== FO-MATLANG ≡ weighted logics (Proposition 6.7) ==");
    let diag_product = graphs::diagonal_product("G", "n");
    println!("FO-MATLANG query    : {diag_product}");
    println!("fragment            : {}", fragment_of(&diag_product));
    let formula: WlFormula = matlang_to_wl(&diag_product, &schema).unwrap();
    println!("Φ(e) as a WL formula: {formula}");
    let structure = encode_instance_as_structure(&schema, &instance).unwrap();
    let via_wl = formula.evaluate(&structure, &HashMap::new()).unwrap();
    let direct = evaluate(&diag_product, &instance, &registry)
        .unwrap()
        .as_scalar()
        .unwrap();
    println!("⟦e⟧(I) = {direct:?}  /  ⟦Φ(e)⟧(WL(I)) = {via_wl:?}");
    assert_eq!(direct, via_wl);

    // ------------------------------------------------------------------
    // Top of Figure 1 — for-MATLANG ≡ arithmetic circuits.
    // ------------------------------------------------------------------
    println!("\n== for-MATLANG ≡ arithmetic circuits (Section 5) ==");
    let fw = graphs::transitive_closure_fw("G", "n");
    println!("for-MATLANG query   : Floyd–Warshall transitive closure");
    println!("fragment            : {}", fragment_of(&fw));
    for size in [2usize, 3, 4] {
        let circuit = expr_to_circuit(&fw, &schema, size).unwrap();
        println!(
            "  n = {size}: circuit with {:>6} gates, depth {:>3}, max output degree {}",
            circuit.circuit().num_gates(),
            circuit.circuit().depth(),
            circuit.max_output_degree()
        );
    }
    // Circuits translate back into the language (Theorem 5.1, per size).
    let small_circuit = expr_to_circuit(&graphs::trace("G", "n"), &schema, 3).unwrap();
    let back = circuit_to_expr(small_circuit.circuit(), "n");
    println!(
        "trace circuit decompiled back into for-MATLANG ({} AST nodes)",
        back.size()
    );
}
