//! Graph analytics with for-MATLANG: transitive closure, 4-clique detection
//! and triangle counting on a random graph, cross-checked against native
//! Rust baselines (the workloads of Examples 3.3 and 3.5 of the paper).
//!
//! Run with `cargo run --example graph_analytics`.

use matlang::algorithms::{baseline, graphs, standard_registry};
use matlang::prelude::*;

fn main() {
    let n = 8;
    let adjacency: Matrix<Real> = random_adjacency(n, 0.35, 2024);
    println!(
        "random digraph on {n} vertices, {} edges",
        count_edges(&adjacency)
    );

    let instance = Instance::new()
        .with_dim("n", n)
        .with_matrix("G", adjacency.clone());
    let registry = standard_registry::<Real>();

    // ------------------------------------------------------------------
    // Transitive closure, three ways (Example 3.5 and Section 6.3).
    // ------------------------------------------------------------------
    let fw = graphs::transitive_closure_fw_bool("G", "n");
    let tc_fw = evaluate(&fw, &instance, &registry).unwrap();

    let prod = graphs::transitive_closure_prod("G", "n");
    let tc_prod = evaluate(&prod, &instance, &registry).unwrap();

    let tc_baseline = baseline::transitive_closure(&adjacency, false);
    let tc_baseline_reflexive = baseline::transitive_closure(&adjacency, true);

    assert_eq!(
        tc_fw, tc_baseline,
        "Floyd–Warshall expression disagrees with the baseline"
    );
    assert_eq!(
        tc_prod, tc_baseline_reflexive,
        "prod-MATLANG closure disagrees with the baseline"
    );
    println!("transitive closure (for-MATLANG Floyd–Warshall) = baseline      : ok");
    println!("reflexive closure  (prod-MATLANG (I+A)^n)       = baseline      : ok");
    println!(
        "reachable pairs: {} (non-reflexive), {} (reflexive)",
        count_edges(&tc_fw),
        count_edges(&tc_prod)
    );

    // ------------------------------------------------------------------
    // 4-clique detection (Example 3.3) on the symmetrised graph.
    // ------------------------------------------------------------------
    let symmetric = adjacency.add(&adjacency.transpose()).unwrap().map(|v| {
        if v.0 > 0.0 {
            Real(1.0)
        } else {
            Real(0.0)
        }
    });
    let sym_instance = Instance::new()
        .with_dim("n", n)
        .with_matrix("G", symmetric.clone());
    let clique_expr = graphs::four_clique("G", "n");
    let clique_value = evaluate(&clique_expr, &sym_instance, &registry)
        .unwrap()
        .as_scalar()
        .unwrap();
    let clique_baseline = baseline::has_four_clique(&symmetric);
    assert_eq!(clique_value.0 > 0.0, clique_baseline);
    println!(
        "4-clique (sum-MATLANG, Example 3.3)                              : {} (certificate count {})",
        if clique_baseline { "present" } else { "absent" },
        clique_value.0
    );

    // ------------------------------------------------------------------
    // Triangle counting: tr(A³) as a sum-MATLANG query.
    // ------------------------------------------------------------------
    let triangles = evaluate(&graphs::triangle_count("G", "n"), &instance, &registry)
        .unwrap()
        .as_scalar()
        .unwrap();
    let triangles_baseline = baseline::triangle_trace(&adjacency);
    assert!((triangles.0 - triangles_baseline.0).abs() < 1e-9);
    println!(
        "closed triangle walks tr(A³)                                     : {}",
        triangles.0
    );

    // ------------------------------------------------------------------
    // The same reachability query over the boolean semiring: the annotations
    // *are* the reachability bits, no thresholding needed.
    // ------------------------------------------------------------------
    let bool_adjacency: Matrix<Boolean> = Matrix::from_vec(
        n,
        n,
        adjacency
            .entries()
            .iter()
            .map(|v| Boolean(v.0 != 0.0))
            .collect(),
    )
    .unwrap();
    let bool_instance = Instance::new()
        .with_dim("n", n)
        .with_matrix("G", bool_adjacency.clone());
    let bool_registry: FunctionRegistry<Boolean> = FunctionRegistry::new();
    let reach = evaluate(
        &graphs::transitive_closure_fw("G", "n"),
        &bool_instance,
        &bool_registry,
    )
    .unwrap();
    assert_eq!(reach, baseline::transitive_closure(&bool_adjacency, false));
    println!("boolean-semiring reachability (no f_>0 needed)                   : ok");
}

fn count_edges<K: Semiring>(m: &Matrix<K>) -> usize {
    m.entries().iter().filter(|v| !v.is_zero()).count()
}
