//! Experiment E7 — the for-MATLANG ↔ arithmetic-circuit correspondence of
//! Section 5 (Theorems 5.1 and 5.3, Corollary 5.4), checked empirically:
//! compiled circuits agree with the interpreter, decompiled circuits agree
//! with direct circuit evaluation, and a full round trip preserves semantics.

use matlang::algorithms::{graphs, order, standard_registry};
use matlang::circuits::{circuit_to_expr, expr_to_circuit, Circuit, CircuitFamily};
use matlang::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn schema() -> Schema {
    Schema::new()
        .with_var("G", MatrixType::square("n"))
        .with_var("u", MatrixType::vector("n"))
}

fn random_instance(n: usize, seed: u64) -> Instance<Real> {
    let cfg = RandomMatrixConfig {
        seed,
        integer_entries: true,
        min_value: -2.0,
        max_value: 3.0,
        ..Default::default()
    };
    Instance::new()
        .with_dim("n", n)
        .with_matrix("G", random_matrix(n, n, &cfg))
        .with_matrix(
            "u",
            random_matrix(
                n,
                1,
                &RandomMatrixConfig {
                    seed: seed + 7,
                    ..cfg
                },
            ),
        )
}

/// Theorem 5.3: the compiled circuit computes the same function as the
/// expression, for every size in the sweep.
#[test]
fn theorem_5_3_expressions_compile_to_equivalent_circuits() {
    let suite: Vec<(&str, Expr)> = vec![
        ("trace", graphs::trace("G", "n")),
        ("triangles", graphs::triangle_count("G", "n")),
        ("diag-product", graphs::diagonal_product("G", "n")),
        ("floyd-warshall", graphs::transitive_closure_fw("G", "n")),
        ("order-S<", order::s_lt("n")),
        (
            "gram",
            Expr::var("G")
                .t()
                .mm(Expr::var("G"))
                .add(Expr::var("G").ones().diag()),
        ),
        (
            "quadratic-form",
            Expr::var("u").t().mm(Expr::var("G")).mm(Expr::var("u")),
        ),
    ];
    let schema = schema();
    let registry = standard_registry::<Real>();
    for (name, expr) in suite {
        for n in [2usize, 3, 4] {
            let circuit = expr_to_circuit(&expr, &schema, n)
                .unwrap_or_else(|e| panic!("{name} failed to compile at n={n}: {e}"));
            let instance = random_instance(n, 17 * n as u64);
            let via_circuit = circuit.evaluate(&instance).unwrap();
            let via_interpreter = evaluate(&expr, &instance, &registry).unwrap();
            assert!(
                via_circuit.approx_eq(&via_interpreter, 1e-6),
                "{name}: circuit and interpreter disagree at n={n}"
            );
        }
    }
}

/// Theorem 5.1 (per-size content): reference circuit families decompile to
/// for-MATLANG expressions computing the same function of the input vector.
#[test]
fn theorem_5_1_circuit_families_decompile_to_equivalent_expressions() {
    let families = [
        CircuitFamily::sum_of_inputs(),
        CircuitFamily::product_of_inputs(),
        CircuitFamily::sum_of_squares(),
        CircuitFamily::balanced_product(),
        CircuitFamily::repeated_squaring(),
    ];
    let registry = standard_registry::<Real>();
    let mut rng = StdRng::seed_from_u64(5);
    for family in &families {
        for n in [1usize, 3, 5] {
            let circuit = family.member(n);
            let inputs: Vec<f64> = (0..circuit.num_inputs().max(1))
                .map(|_| rng.gen_range(-2..3) as f64)
                .collect();
            let reals: Vec<Real> = inputs.iter().map(|&v| Real(v)).collect();
            let direct = circuit.evaluate(&reals).unwrap()[0];

            let expr = circuit_to_expr(&circuit, "n");
            let dim = inputs.len();
            let instance: Instance<Real> = Instance::new()
                .with_dim("n", dim)
                .with_matrix("v", Matrix::from_vec(dim, 1, reals).unwrap());
            let via_expr = evaluate(&expr, &instance, &registry)
                .unwrap()
                .as_scalar()
                .unwrap();
            assert!(
                (direct.0 - via_expr.0).abs() < 1e-9,
                "{}: decompilation diverges at n={n} ({} vs {})",
                family.name(),
                direct.0,
                via_expr.0
            );
        }
    }
}

/// Corollary 5.4 round trip: expression → circuit → expression preserves the
/// computed function (over a single vector input, the setting of Thm 5.1).
#[test]
fn corollary_5_4_roundtrip_preserves_semantics() {
    let vector_schema = Schema::new().with_var("v", MatrixType::vector("n"));
    let suite = vec![
        Expr::var("v").t().mm(Expr::var("v")),
        Expr::sum("w", "n", Expr::var("w").t().mm(Expr::var("v"))),
        Expr::var("v")
            .t()
            .mm(Expr::var("v"))
            .mm(Expr::var("v").t().mm(Expr::var("v"))),
        Expr::hprod(
            "w",
            "n",
            Expr::var("w").t().mm(Expr::var("v")).add(Expr::lit(1.0)),
        ),
    ];
    let registry = standard_registry::<Real>();
    for expr in suite {
        for n in [2usize, 4] {
            let circuit = expr_to_circuit(&expr, &vector_schema, n).unwrap();
            let back = circuit_to_expr(circuit.circuit(), "n");
            let instance = random_instance(n, 23)
                .with_matrix("v", random_matrix(n, 1, &RandomMatrixConfig::seeded(3)));
            let original = evaluate(&expr, &instance, &registry)
                .unwrap()
                .as_scalar()
                .unwrap();
            let roundtripped = evaluate(&back, &instance, &registry)
                .unwrap()
                .as_scalar()
                .unwrap();
            assert!(
                (original.0 - roundtripped.0).abs() < 1e-7,
                "round trip diverged for {expr} at n={n}"
            );
        }
    }
}

/// The two circuit evaluators (topological and the paper's two-stack
/// depth-first machine) agree on random circuits.
#[test]
fn two_stack_evaluator_agrees_with_topological_evaluation_on_random_circuits() {
    let mut rng = StdRng::seed_from_u64(2024);
    for _ in 0..25 {
        let num_inputs = rng.gen_range(1..5);
        let mut circuit = Circuit::new();
        let mut gates: Vec<usize> = (0..num_inputs).map(|i| circuit.input(i)).collect();
        gates.push(circuit.constant(rng.gen_range(0..3) as f64));
        for _ in 0..rng.gen_range(3..10) {
            let a = gates[rng.gen_range(0..gates.len())];
            let b = gates[rng.gen_range(0..gates.len())];
            let gate = if rng.gen_bool(0.5) {
                circuit.add(vec![a, b]).unwrap()
            } else {
                circuit.mul(vec![a, b]).unwrap()
            };
            gates.push(gate);
        }
        circuit.mark_output(*gates.last().unwrap()).unwrap();
        let inputs: Vec<Real> = (0..num_inputs)
            .map(|_| Real(rng.gen_range(-2..3) as f64))
            .collect();
        let topological = circuit.evaluate(&inputs).unwrap()[0];
        let two_stack = circuit.evaluate_two_stack(&inputs).unwrap();
        assert_eq!(topological, two_stack);
    }
}

/// Compiled circuits stay polynomially sized for the polynomial-degree
/// fragments (a size-side sanity check of Corollary 5.4).
#[test]
fn compiled_circuit_sizes_grow_polynomially_for_sum_matlang() {
    let schema = schema();
    let trace_sizes: Vec<usize> = (2..=6)
        .map(|n| {
            expr_to_circuit(&graphs::trace("G", "n"), &schema, n)
                .unwrap()
                .circuit()
                .size()
        })
        .collect();
    // Cubic growth at worst: the trace compiles to n inner products of n
    // entries each, so size(n) ≤ c·n³ for a small constant.
    for (i, &size) in trace_sizes.iter().enumerate() {
        let n = i + 2;
        assert!(
            size <= 20 * n * n * n,
            "trace circuit too large at n={n}: {size}"
        );
    }
    // And monotone.
    assert!(trace_sizes.windows(2).all(|w| w[0] < w[1]));
}
