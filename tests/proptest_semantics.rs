//! Property-based tests of the evaluator's semantics across crates: the
//! interpreter must agree with direct matrix algebra, with the circuit
//! compilation, and with the relational translation, on randomized inputs.

use matlang::algorithms::{baseline, graphs, standard_registry};
use matlang::circuits::expr_to_circuit;
use matlang::prelude::*;
use matlang::ra::{encode_instance, matlang_to_ra};
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::new()
        .with_var("A", MatrixType::square("n"))
        .with_var("B", MatrixType::square("n"))
        .with_var("u", MatrixType::vector("n"))
}

fn nat_matrix(n: usize, max: u64) -> impl Strategy<Value = Matrix<Nat>> {
    proptest::collection::vec(0..=max, n * n)
        .prop_map(move |data| Matrix::from_vec(n, n, data.into_iter().map(Nat).collect()).unwrap())
}

fn nat_vector(n: usize, max: u64) -> impl Strategy<Value = Matrix<Nat>> {
    proptest::collection::vec(0..=max, n)
        .prop_map(move |data| Matrix::from_vec(n, 1, data.into_iter().map(Nat).collect()).unwrap())
}

fn nat_instance(n: usize) -> impl Strategy<Value = Instance<Nat>> {
    (nat_matrix(n, 4), nat_matrix(n, 4), nat_vector(n, 4)).prop_map(move |(a, b, u)| {
        Instance::new()
            .with_dim("n", n)
            .with_matrix("A", a)
            .with_matrix("B", b)
            .with_matrix("u", u)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The interpreter agrees with direct matrix algebra on the MATLANG core.
    #[test]
    fn interpreter_matches_matrix_algebra(instance in nat_instance(3)) {
        let registry = FunctionRegistry::<Nat>::new();
        let a = instance.matrix("A").unwrap().clone();
        let b = instance.matrix("B").unwrap().clone();
        let u = instance.matrix("u").unwrap().clone();

        let cases: Vec<(Expr, Matrix<Nat>)> = vec![
            (Expr::var("A").t(), a.transpose()),
            (Expr::var("A").add(Expr::var("B")), a.add(&b).unwrap()),
            (Expr::var("A").mm(Expr::var("B")), a.matmul(&b).unwrap()),
            (Expr::var("A").had(Expr::var("B")), a.hadamard(&b).unwrap()),
            (Expr::var("A").mm(Expr::var("u")), a.matmul(&u).unwrap()),
            (Expr::var("u").diag(), u.diag().unwrap()),
            (Expr::var("A").ones(), Matrix::ones_vector(3)),
            (
                Expr::sum("v", "n", Expr::var("v").t().mm(Expr::var("A")).mm(Expr::var("v"))),
                Matrix::scalar(a.trace().unwrap()),
            ),
            (Expr::mprod("v", "n", Expr::var("A")), a.pow(3).unwrap()),
        ];
        for (expr, expected) in cases {
            let got = evaluate(&expr, &instance, &registry).unwrap();
            prop_assert_eq!(got, expected, "mismatch for {}", expr);
        }
    }

    /// Σ is insensitive to the iteration order of canonical vectors
    /// (Section 6.1): summing a reversed-index body gives the same result.
    #[test]
    fn sum_quantifier_is_order_invariant(instance in nat_instance(3)) {
        let registry = FunctionRegistry::<Nat>::new();
        let forward = Expr::sum("v", "n", Expr::var("v").t().mm(Expr::var("A")).mm(Expr::var("v")));
        // Σ over the "reversed" canonical vectors: replace v by (S< + S<ᵀ + I)·v
        // permuted via the reversal matrix built from canonical selectors is
        // overkill; instead we use the algebraic fact Σv f(v) = Σw f(ρ(w)) for
        // the concrete reversal permutation, computed by re-indexing the
        // matrix directly.
        let a = instance.matrix("A").unwrap();
        let n = a.rows();
        let mut reversed = Matrix::<Nat>::zeros(n, n);
        for (i, j, v) in a.iter_entries() {
            reversed.set(n - 1 - i, n - 1 - j, *v).unwrap();
        }
        let reversed_instance = Instance::new().with_dim("n", n).with_matrix("A", reversed);
        let lhs = evaluate(&forward, &instance, &registry).unwrap();
        let rhs = evaluate(&forward, &reversed_instance, &registry).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    /// Compiled circuits (Theorem 5.3) agree with the interpreter on random
    /// instances for a fixed expression suite.
    #[test]
    fn circuits_match_interpreter(instance in nat_instance(3)) {
        let registry = FunctionRegistry::<Nat>::new();
        let schema = schema();
        for expr in [
            graphs::trace("A", "n"),
            Expr::var("A").mm(Expr::var("B")),
            Expr::sum("v", "n", Expr::var("v").mm(Expr::var("v").t())),
            graphs::diagonal_product("A", "n"),
        ] {
            let circuit = expr_to_circuit(&expr, &schema, 3).unwrap();
            let via_circuit = circuit.evaluate(&instance).unwrap();
            let via_interpreter = evaluate(&expr, &instance, &registry).unwrap();
            prop_assert_eq!(via_circuit, via_interpreter, "mismatch for {}", expr);
        }
    }

    /// The RA⁺_K translation (Proposition 6.3) agrees with the interpreter on
    /// random instances.
    #[test]
    fn ra_translation_matches_interpreter(instance in nat_instance(3)) {
        let registry = FunctionRegistry::<Nat>::new().with_semiring_ops();
        let schema = schema();
        let database = encode_instance(&schema, &instance).unwrap();
        for expr in [
            Expr::var("A").mm(Expr::var("B")),
            Expr::sum("v", "n", Expr::var("v").t().mm(Expr::var("A")).mm(Expr::var("v"))),
        ] {
            let matrix = evaluate(&expr, &instance, &registry).unwrap();
            let relation = matlang_to_ra(&expr, &schema).unwrap().evaluate(&database).unwrap();
            for i in 0..matrix.rows() {
                for j in 0..matrix.cols() {
                    let mut tuple: Vec<(&str, u64)> = Vec::new();
                    if matrix.rows() == 3 {
                        tuple.push(("row_n", (i + 1) as u64));
                    }
                    if matrix.cols() == 3 {
                        tuple.push(("col_n", (j + 1) as u64));
                    }
                    prop_assert_eq!(
                        &relation.annotation(&tuple),
                        matrix.get(i, j).unwrap(),
                        "mismatch at ({}, {}) for {}", i, j, &expr
                    );
                }
            }
        }
    }

    /// The Floyd–Warshall expression computes reachability on random graphs
    /// of varying density.
    #[test]
    fn floyd_warshall_is_reachability(seed in 0u64..200, density in 0.05f64..0.6) {
        let n = 6;
        let adjacency: Matrix<Real> = random_adjacency(n, density, seed);
        let instance = Instance::new().with_dim("n", n).with_matrix("G", adjacency.clone());
        let closure = evaluate(
            &graphs::transitive_closure_fw_bool("G", "n"),
            &instance,
            &standard_registry::<Real>(),
        )
        .unwrap();
        prop_assert_eq!(closure, baseline::transitive_closure(&adjacency, false));
    }

    /// LU decomposition reconstructs random diagonally dominant matrices.
    #[test]
    fn lu_reconstructs_random_matrices(seed in 0u64..100) {
        let n = 4;
        let a: Matrix<Real> = random_invertible(n, seed);
        let instance = Instance::new().with_dim("n", n).with_matrix("A", a.clone());
        let registry = standard_registry::<Real>();
        let l = evaluate(&matlang::algorithms::lu::lower_factor("A", "n"), &instance, &registry).unwrap();
        let u = evaluate(&matlang::algorithms::lu::upper_factor("A", "n"), &instance, &registry).unwrap();
        prop_assert!(l.matmul(&u).unwrap().approx_eq(&a, 1e-6));
    }
}
