//! The paper's worked examples and propositions, end to end:
//! Examples 3.1–3.5, the design-decision constructions of Section 3.2,
//! Example 6.6, and Propositions 4.1–4.3 over randomized inputs.

use matlang::algorithms::{baseline, csanky, graphs, lu, order, standard_registry, triangular};
use matlang::core::desugar::{desugar, is_core};
use matlang::prelude::*;

fn schema() -> Schema {
    Schema::new()
        .with_var("A", MatrixType::square("n"))
        .with_var("G", MatrixType::square("n"))
        .with_var("u", MatrixType::vector("n"))
}

fn registry() -> FunctionRegistry<Real> {
    standard_registry::<Real>()
}

fn instance(n: usize, seed: u64) -> Instance<Real> {
    Instance::new()
        .with_dim("n", n)
        .with_matrix("A", random_invertible(n, seed))
        .with_matrix("G", random_adjacency(n, 0.4, seed))
        .with_matrix("u", random_vector(n, &RandomMatrixConfig::seeded(seed)))
}

#[test]
fn example_3_1_and_3_2_one_vector_and_diag_are_redundant() {
    // The sugared operators and their for-loop desugarings (Examples 3.1 and
    // 3.2) evaluate identically, and the desugared forms are core
    // for-MATLANG.
    let inst = instance(5, 3);
    for sugared in [
        Expr::var("A").ones(),
        Expr::var("u").diag(),
        Expr::var("G").ones().diag(),
        Expr::sum("v", "n", Expr::var("v").mm(Expr::var("v").t())),
    ] {
        let core_form = desugar(&sugared, &schema()).unwrap();
        assert!(is_core(&core_form));
        let lhs = evaluate(&sugared, &inst, &registry()).unwrap();
        let rhs = evaluate(&core_form, &inst, &registry()).unwrap();
        assert_eq!(lhs, rhs, "desugaring changed the semantics of {sugared}");
    }
}

#[test]
fn section_3_2_order_machinery() {
    // e_min, e_max, S≤, S<, Prev, Next evaluate to their intended matrices
    // for a range of dimensions (Appendix B.1).
    for n in 1..=6 {
        let inst = instance(n, 1);
        let reg = registry();
        assert_eq!(
            evaluate(&order::e_min("n"), &inst, &reg).unwrap(),
            Matrix::canonical(n, 0).unwrap()
        );
        assert_eq!(
            evaluate(&order::e_max("n"), &inst, &reg).unwrap(),
            Matrix::canonical(n, n - 1).unwrap()
        );
        assert_eq!(
            evaluate(&order::s_leq("n"), &inst, &reg).unwrap(),
            Matrix::order_leq(n)
        );
        assert_eq!(
            evaluate(&order::s_lt("n"), &inst, &reg).unwrap(),
            Matrix::order_lt(n)
        );
        assert_eq!(
            evaluate(&order::prev_matrix("n"), &inst, &reg).unwrap(),
            Matrix::shift_prev(n)
        );
        assert_eq!(
            evaluate(&order::next_matrix("n"), &inst, &reg).unwrap(),
            Matrix::shift_next(n)
        );
        assert_eq!(
            evaluate(&order::identity("n"), &inst, &reg).unwrap(),
            Matrix::identity(n)
        );
    }
}

#[test]
fn example_3_3_four_clique_agrees_with_brute_force() {
    let expr = graphs::four_clique("G", "n");
    for seed in 0..8 {
        let n = 7;
        let adjacency: Matrix<Real> = random_adjacency(n, 0.55, seed);
        let symmetric = adjacency.add(&adjacency.transpose()).unwrap().map(|v| {
            if v.0 > 0.0 {
                Real(1.0)
            } else {
                Real(0.0)
            }
        });
        let inst = Instance::new()
            .with_dim("n", n)
            .with_matrix("G", symmetric.clone());
        let value = evaluate(&expr, &inst, &registry())
            .unwrap()
            .as_scalar()
            .unwrap();
        assert_eq!(
            value.0 > 0.0,
            baseline::has_four_clique(&symmetric),
            "4-clique disagreement for seed {seed}"
        );
    }
}

#[test]
fn example_3_5_floyd_warshall_transitive_closure() {
    let expr = graphs::transitive_closure_fw_bool("G", "n");
    for seed in 0..8 {
        let n = 7;
        let adjacency: Matrix<Real> = random_adjacency(n, 0.25, seed);
        let inst = Instance::new()
            .with_dim("n", n)
            .with_matrix("G", adjacency.clone());
        let closure = evaluate(&expr, &inst, &registry()).unwrap();
        assert_eq!(closure, baseline::transitive_closure(&adjacency, false));
    }
}

#[test]
fn proposition_4_1_lu_decomposition_on_random_factorizable_matrices() {
    for seed in 0..4 {
        let n = 5;
        let a: Matrix<Real> = random_invertible(n, seed);
        let inst = Instance::new().with_dim("n", n).with_matrix("A", a.clone());
        let l = evaluate(&lu::lower_factor("A", "n"), &inst, &registry()).unwrap();
        let u = evaluate(&lu::upper_factor("A", "n"), &inst, &registry()).unwrap();
        assert!(
            l.matmul(&u).unwrap().approx_eq(&a, 1e-7),
            "L·U ≠ A for seed {seed}"
        );
        let (bl, bu) = baseline::lu_decompose(&a).unwrap();
        assert!(l.approx_eq(&bl, 1e-7));
        assert!(u.approx_eq(&bu, 1e-7));
    }
}

#[test]
fn proposition_4_2_plu_decomposition_with_pivoting() {
    // Matrices engineered to hit zero pivots at various stages.
    let cases: Vec<Matrix<Real>> = vec![
        Matrix::from_f64_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap(),
        Matrix::from_f64_rows(&[&[0.0, 2.0, 1.0], &[1.0, 0.0, 3.0], &[4.0, 5.0, 0.0]]).unwrap(),
        Matrix::from_f64_rows(&[
            &[1.0, 2.0, 3.0, 4.0],
            &[2.0, 4.0, 1.0, 0.0],
            &[0.0, 0.0, 0.0, 5.0],
            &[1.0, 1.0, 1.0, 1.0],
        ])
        .unwrap(),
        Matrix::from_f64_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap(),
    ];
    for (idx, a) in cases.into_iter().enumerate() {
        let n = a.rows();
        let inst = Instance::new().with_dim("n", n).with_matrix("A", a.clone());
        let m = evaluate(&lu::l_inverse_pivoted("A", "n"), &inst, &registry()).unwrap();
        let u = evaluate(&lu::upper_factor_pivoted("A", "n"), &inst, &registry()).unwrap();
        assert!(
            u.iter_entries().all(|(i, j, v)| j >= i || v.0.abs() < 1e-8),
            "U not upper triangular for case {idx}"
        );
        assert!(
            m.matmul(&a).unwrap().approx_eq(&u, 1e-8),
            "L⁻¹·P·A ≠ U for case {idx}"
        );
    }
}

#[test]
fn proposition_4_3_determinant_and_inverse_via_csanky() {
    for seed in 0..3 {
        let n = 4;
        let a: Matrix<Real> = random_invertible(n, seed + 40);
        let inst = Instance::new().with_dim("n", n).with_matrix("A", a.clone());

        let det = evaluate(&csanky::determinant("A", "n"), &inst, &registry())
            .unwrap()
            .as_scalar()
            .unwrap();
        let det_baselines = [
            a.determinant().unwrap().0,
            baseline::determinant_via_char_poly(&a).unwrap().0,
        ];
        for expected in det_baselines {
            let scale = det.0.abs().max(expected.abs()).max(1.0);
            assert!((det.0 - expected).abs() / scale < 1e-6);
        }

        let inv = evaluate(&csanky::inverse("A", "n"), &inst, &registry()).unwrap();
        assert!(inv.approx_eq(&a.inverse().unwrap(), 1e-6));
        assert!(inv.approx_eq(&baseline::inverse_via_char_poly(&a).unwrap(), 1e-6));
    }
}

#[test]
fn lemma_c_1_triangular_inversion() {
    let u: Matrix<Real> =
        Matrix::from_f64_rows(&[&[2.0, 5.0, 1.0], &[0.0, 3.0, 7.0], &[0.0, 0.0, 4.0]]).unwrap();
    let inst = Instance::new().with_dim("n", 3).with_matrix("A", u.clone());
    let inv = evaluate(
        &triangular::upper_triangular_inverse(Expr::var("A"), "n"),
        &inst,
        &registry(),
    )
    .unwrap();
    assert!(u
        .matmul(&inv)
        .unwrap()
        .approx_eq(&Matrix::identity(3), 1e-9));

    let l = u.transpose();
    let inst = Instance::new().with_dim("n", 3).with_matrix("A", l.clone());
    let inv = evaluate(
        &triangular::lower_triangular_inverse(Expr::var("A"), "n"),
        &inst,
        &registry(),
    )
    .unwrap();
    assert!(l
        .matmul(&inv)
        .unwrap()
        .approx_eq(&Matrix::identity(3), 1e-9));
}

#[test]
fn example_6_6_diagonal_product_and_trace() {
    let a: Matrix<Real> =
        Matrix::from_f64_rows(&[&[2.0, 8.0, 8.0], &[8.0, 5.0, 8.0], &[8.0, 8.0, 7.0]]).unwrap();
    let inst = Instance::new().with_dim("n", 3).with_matrix("G", a);
    let dp = evaluate(&graphs::diagonal_product("G", "n"), &inst, &registry())
        .unwrap()
        .as_scalar()
        .unwrap();
    assert_eq!(dp.0, 70.0);
    let tr = evaluate(&graphs::trace("G", "n"), &inst, &registry())
        .unwrap()
        .as_scalar()
        .unwrap();
    assert_eq!(tr.0, 14.0);
}

#[test]
fn loop_initialization_sugar_of_section_3_2() {
    // `for v, X = e₀. e` is expressible from the zero-initialized loop; our
    // evaluator supports it natively, and the equivalence with the min()-based
    // rewriting of Section 3.2 is checked here on the Floyd–Warshall body.
    let inst = instance(5, 9);
    let with_init = graphs::transitive_closure_fw("G", "n");

    // Rewritten form: zero-initialized loop whose body selects e(v, X/e₀) in
    // the first iteration and e(v, X) afterwards.
    let Expr::For {
        var,
        var_dim,
        acc,
        acc_type,
        init,
        body,
    } = with_init.clone()
    else {
        panic!("Floyd–Warshall is a for loop");
    };
    let init = *init.expect("has an initializer");
    let min_v = order::min_pred(Expr::var(&var), "n");
    let body_with_init = body.substitute(&acc, &init);
    let rewritten_body = min_v
        .clone()
        .smul(body_with_init)
        .add(Expr::lit(1.0).minus(min_v).smul(*body));
    let rewritten = Expr::For {
        var,
        var_dim,
        acc,
        acc_type,
        init: None,
        body: Box::new(rewritten_body),
    };

    let lhs = evaluate(&with_init, &inst, &registry()).unwrap();
    let rhs = evaluate(&rewritten, &inst, &registry()).unwrap();
    assert_eq!(lhs, rhs);
}
