//! Experiment E1 / E8 — Figure 1 of the paper: the fragment hierarchy
//!
//! ```text
//! MATLANG ⊊ sum-MATLANG ≡ RA⁺_K ⊊ FO-MATLANG ≡ WL ⊆ prod-MATLANG + S< ⊆ for-MATLANG ≡ circuits
//! ```
//!
//! Each witness query of the figure (4-clique, diagonal product, transitive
//! closure, inverse/determinant, PLU) is checked to (a) live syntactically in
//! the expected fragment and (b) compute the expected semantics there.

use matlang::algorithms::{baseline, csanky, graphs, lu, standard_registry};
use matlang::circuits::expr_to_circuit;
use matlang::prelude::*;

fn schema() -> Schema {
    Schema::new().with_var("G", MatrixType::square("n"))
}

#[test]
fn witness_queries_live_in_their_figure_1_fragments() {
    // 4-clique is placed in sum-MATLANG in Figure 1.
    assert_eq!(
        fragment_of(&graphs::four_clique("G", "n")),
        Fragment::SumMatlang
    );
    // The diagonal product (DP) is placed in FO-MATLANG.
    assert_eq!(
        fragment_of(&graphs::diagonal_product("G", "n")),
        Fragment::FoMatlang
    );
    // The prod-MATLANG transitive closure is placed in prod-MATLANG (+ f_>0).
    assert_eq!(
        fragment_of(&graphs::transitive_closure_prod("G", "n")),
        Fragment::ProdMatlang
    );
    // Inverse, determinant and PLU are placed at the top (for-MATLANG).
    assert_eq!(
        fragment_of(&csanky::inverse("G", "n")),
        Fragment::ForMatlang
    );
    assert_eq!(
        fragment_of(&csanky::determinant("G", "n")),
        Fragment::ForMatlang
    );
    assert_eq!(
        fragment_of(&lu::l_inverse_pivoted("G", "n")),
        Fragment::ForMatlang
    );
    // Plain MATLANG sits strictly below everything.
    let matlang_query = Expr::var("G").t().mm(Expr::var("G")).add(Expr::var("G"));
    assert_eq!(fragment_of(&matlang_query), Fragment::Matlang);
    assert!(Fragment::Matlang < Fragment::SumMatlang);
    assert!(Fragment::SumMatlang < Fragment::FoMatlang);
    assert!(Fragment::FoMatlang < Fragment::ProdMatlang);
    assert!(Fragment::ProdMatlang < Fragment::ForMatlang);
}

#[test]
fn proposition_3_4_for_matlang_strictly_extends_matlang() {
    // MATLANG cannot express the transitive closure (a known result the paper
    // builds on); for-MATLANG can.  We verify the positive side empirically:
    // the for-MATLANG expression computes reachability that no fixed
    // MATLANG-style polynomial of bounded degree computes here — concretely,
    // the closure of a long path needs paths of length n−1, while every
    // MATLANG expression over {·,+,ᵀ} we enumerate below has bounded degree
    // and fails on a sufficiently long path.
    let registry = standard_registry::<Real>();
    let n = 6;
    // Path 0 → 1 → ⋯ → n−1.
    let mut path: Matrix<Real> = Matrix::zeros(n, n);
    for i in 0..n - 1 {
        path.set(i, i + 1, Real(1.0)).unwrap();
    }
    let instance = Instance::new()
        .with_dim("n", n)
        .with_matrix("G", path.clone());
    let closure = evaluate(
        &graphs::transitive_closure_fw_bool("G", "n"),
        &instance,
        &registry,
    )
    .unwrap();
    assert_eq!(closure, baseline::transitive_closure(&path, false));
    // The pair (0, n−1) is reachable only through a length-(n−1) path; the
    // bounded-degree MATLANG expressions G, G², G+G², (G+G²)·G all miss it.
    assert!(!closure.get(0, n - 1).unwrap().is_zero());
    for bounded in [
        Expr::var("G"),
        Expr::var("G").mm(Expr::var("G")),
        Expr::var("G").add(Expr::var("G").mm(Expr::var("G"))),
        Expr::var("G")
            .add(Expr::var("G").mm(Expr::var("G")))
            .mm(Expr::var("G")),
    ] {
        let value = evaluate(&bounded, &instance, &registry).unwrap();
        assert!(
            value.get(0, n - 1).unwrap().is_zero(),
            "bounded-degree MATLANG expression unexpectedly reached the far end"
        );
    }
}

#[test]
fn example_6_6_diagonal_product_exceeds_sum_matlang_growth() {
    // Proposition 6.1: sum-MATLANG values grow polynomially in n.  The
    // FO-MATLANG diagonal product reaches 2ⁿ on diag(2,…,2), and its compiled
    // circuit degree grows linearly while the for-MATLANG repeated-squaring
    // expression has exponential circuit degree (experiment E8).
    let registry = standard_registry::<Real>();
    for n in [2usize, 4, 8] {
        let two_diag: Matrix<Real> = Matrix::identity(n).scalar_mul(&Real(2.0));
        let instance = Instance::new().with_dim("n", n).with_matrix("G", two_diag);
        let value = evaluate(&graphs::diagonal_product("G", "n"), &instance, &registry)
            .unwrap()
            .as_scalar()
            .unwrap();
        assert_eq!(value.0, 2f64.powi(n as i32));

        // The sum-MATLANG trace over the same instance stays linear in n.
        let trace = evaluate(&graphs::trace("G", "n"), &instance, &registry)
            .unwrap()
            .as_scalar()
            .unwrap();
        assert_eq!(trace.0, 2.0 * n as f64);
    }

    // Degree comparison through the circuit compilation (Theorem 5.3).
    let schema = schema();
    for n in [2usize, 3, 4, 5, 6] {
        let sum_deg = expr_to_circuit(&graphs::trace("G", "n"), &schema, n)
            .unwrap()
            .max_output_degree();
        let dp_deg = expr_to_circuit(&graphs::diagonal_product("G", "n"), &schema, n)
            .unwrap()
            .max_output_degree();
        let exp_expr = Expr::for_init(
            "v",
            "n",
            "X",
            MatrixType::square("n"),
            Expr::var("G"),
            Expr::var("X").mm(Expr::var("X")),
        );
        let exp_deg = expr_to_circuit(&exp_expr, &schema, n)
            .unwrap()
            .max_output_degree();
        assert_eq!(sum_deg, 1, "sum-MATLANG trace has constant degree");
        assert_eq!(dp_deg, n as u128, "diagonal product has linear degree");
        assert_eq!(
            exp_deg,
            1u128 << n,
            "repeated squaring has exponential degree"
        );
        assert!(sum_deg < dp_deg || n == 1);
        assert!(dp_deg < exp_deg);
    }
}

#[test]
fn prod_matlang_computes_transitive_closure_but_sum_matlang_value_growth_cannot() {
    // Section 6.3: sum-MATLANG ≡ RA⁺_K cannot compute the transitive closure
    // (it is not expressible in first-order logic with counting); the
    // prod-MATLANG fragment with f_>0 can.  We check the positive side and,
    // as a sanity proxy for the negative side, that the prod-MATLANG
    // expression is *not* classified in sum-MATLANG.
    let registry = standard_registry::<Real>();
    let tc = graphs::transitive_closure_prod("G", "n");
    assert!(fragment_of(&tc) > Fragment::SumMatlang);
    for seed in 0..4 {
        let adjacency: Matrix<Real> = random_adjacency(7, 0.25, seed);
        let instance = Instance::new()
            .with_dim("n", 7)
            .with_matrix("G", adjacency.clone());
        let closure = evaluate(&tc, &instance, &registry).unwrap();
        assert_eq!(closure, baseline::transitive_closure(&adjacency, true));
    }
}

#[test]
fn for_matlang_computes_inverse_which_lower_fragments_do_not_reach() {
    // Figure 1 places Inv/Det strictly above FO-MATLANG; here we confirm the
    // positive direction: the for-MATLANG Csanky expressions compute them.
    let registry = standard_registry::<Real>();
    for seed in 0..3 {
        let a: Matrix<Real> = random_invertible(4, seed);
        let instance = Instance::new().with_dim("n", 4).with_matrix("G", a.clone());
        let inverse = evaluate(&csanky::inverse("G", "n"), &instance, &registry).unwrap();
        assert!(a
            .matmul(&inverse)
            .unwrap()
            .approx_eq(&Matrix::identity(4), 1e-6));
        let det = evaluate(&csanky::determinant("G", "n"), &instance, &registry)
            .unwrap()
            .as_scalar()
            .unwrap();
        let det_base = a.determinant().unwrap();
        assert!((det.0 - det_base.0).abs() / det_base.0.abs().max(1.0) < 1e-6);
    }
}
