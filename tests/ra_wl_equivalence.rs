//! Experiments E2 and E3 — the fragment/formalism equivalences of Section 6:
//!
//! * Corollary 6.5: sum-MATLANG ≡ RA⁺_K over binary schemas, checked by
//!   translating in both directions and comparing every output entry on
//!   randomized instances, over several semirings.
//! * Proposition 6.7: FO-MATLANG ≡ weighted logics, checked the same way.

use matlang::prelude::*;
use matlang::ra::{
    decode_matrix_instance, encode_instance, matlang_to_ra, ra_to_matlang, RaExpr, RaSchema,
    Relation,
};
use matlang::wl::{
    encode_instance_as_structure, matlang_to_wl, wl_to_matlang, WeightedRelation,
    WeightedStructure, WlFormula, COL_VAR, ROW_VAR,
};
use std::collections::HashMap;

fn square_schema() -> Schema {
    Schema::new()
        .with_var("A", MatrixType::square("n"))
        .with_var("B", MatrixType::square("n"))
        .with_var("u", MatrixType::vector("n"))
}

fn sum_matlang_suite() -> Vec<Expr> {
    vec![
        Expr::var("A"),
        Expr::var("A").t(),
        Expr::var("A").add(Expr::var("B")),
        Expr::var("A").mm(Expr::var("B")),
        Expr::var("A").mm(Expr::var("u")),
        Expr::var("u").t().mm(Expr::var("A")).mm(Expr::var("u")),
        Expr::var("A").ones().diag(),
        Expr::sum(
            "v",
            "n",
            Expr::var("v").t().mm(Expr::var("A")).mm(Expr::var("v")),
        ),
        Expr::sum("v", "n", Expr::var("v").mm(Expr::var("v").t())),
        Expr::sum(
            "v",
            "n",
            Expr::sum(
                "w",
                "n",
                Expr::var("v")
                    .t()
                    .mm(Expr::var("A"))
                    .mm(Expr::var("w"))
                    .smul(Expr::var("v").mm(Expr::var("w").t())),
            ),
        ),
        Expr::var("A")
            .mm(Expr::var("B"))
            .add(Expr::var("B").t().mm(Expr::var("A"))),
    ]
}

fn nat_instance(n: usize, seed: u64) -> Instance<Nat> {
    let cfg = |s| RandomMatrixConfig {
        seed: s,
        min_value: 0.0,
        max_value: 3.0,
        integer_entries: true,
        zero_probability: 0.3,
    };
    Instance::new()
        .with_dim("n", n)
        .with_matrix("A", random_matrix(n, n, &cfg(seed)))
        .with_matrix("B", random_matrix(n, n, &cfg(seed + 1)))
        .with_matrix("u", random_matrix(n, 1, &cfg(seed + 2)))
}

fn boolean_instance(n: usize, seed: u64) -> Instance<Boolean> {
    Instance::new()
        .with_dim("n", n)
        .with_matrix("A", random_adjacency(n, 0.5, seed))
        .with_matrix("B", random_adjacency(n, 0.5, seed + 1))
        .with_matrix(
            "u",
            random_matrix(
                n,
                1,
                &RandomMatrixConfig {
                    seed: seed + 2,
                    min_value: 0.0,
                    max_value: 1.0,
                    integer_entries: true,
                    ..Default::default()
                },
            ),
        )
}

/// Checks `⟦e⟧(I)ᵢⱼ = ⟦Φ(e)⟧(Rel(I))(i+1, j+1)` for every entry.
fn check_to_ra<K: Semiring>(expr: &Expr, instance: &Instance<K>, schema: &Schema) {
    let registry = FunctionRegistry::<K>::new().with_semiring_ops();
    let matrix = evaluate(expr, instance, &registry).unwrap();
    let database = encode_instance(schema, instance).unwrap();
    let ra = matlang_to_ra(expr, schema).unwrap();
    let relation = ra.evaluate(&database).unwrap();
    let ty = typecheck(expr, schema).unwrap();
    for i in 0..matrix.rows() {
        for j in 0..matrix.cols() {
            let mut tuple: Vec<(String, u64)> = Vec::new();
            if let Dim::Sym(s) = &ty.rows {
                tuple.push((format!("row_{s}"), (i + 1) as u64));
            }
            if let Dim::Sym(s) = &ty.cols {
                tuple.push((format!("col_{s}"), (j + 1) as u64));
            }
            let refs: Vec<(&str, u64)> = tuple.iter().map(|(a, v)| (a.as_str(), *v)).collect();
            assert_eq!(
                &relation.annotation(&refs),
                matrix.get(i, j).unwrap(),
                "Φ mismatch at ({i},{j}) for {expr}"
            );
        }
    }
}

#[test]
fn corollary_6_5_sum_matlang_to_ra_over_naturals() {
    let schema = square_schema();
    for expr in sum_matlang_suite() {
        for n in [2usize, 4] {
            check_to_ra(&expr, &nat_instance(n, 11 * n as u64), &schema);
        }
    }
}

#[test]
fn corollary_6_5_sum_matlang_to_ra_over_booleans() {
    let schema = square_schema();
    for expr in sum_matlang_suite() {
        check_to_ra(&expr, &boolean_instance(4, 5), &schema);
    }
}

#[test]
fn corollary_6_5_ra_to_sum_matlang_roundtrip() {
    // Random binary database → RA⁺_K queries → sum-MATLANG over Mat(J).
    let mut edges: Relation<Nat> = Relation::new(["src", "dst"]);
    let mut labels: Relation<Nat> = Relation::new(["node"]);
    let values = [
        (1u64, 2u64, 2u64),
        (2, 3, 1),
        (3, 1, 4),
        (1, 3, 3),
        (3, 3, 5),
    ];
    for (s, d, w) in values {
        edges.insert(&[("src", s), ("dst", d)], Nat(w)).unwrap();
    }
    for v in [1u64, 3] {
        labels.insert(&[("node", v)], Nat(2)).unwrap();
    }
    let mut db = matlang::ra::Database::new();
    db.insert("E".to_string(), edges);
    db.insert("L".to_string(), labels);
    let ra_schema = RaSchema::from_database(&db);

    let queries = vec![
        RaExpr::rel("E"),
        RaExpr::rel("E").union(RaExpr::rel("E")),
        RaExpr::rel("E").project(&["dst"]),
        RaExpr::rel("E").select(&["src", "dst"]),
        RaExpr::rel("E")
            .join(RaExpr::rel("E").rename(&[("src", "dst"), ("dst", "tgt")]))
            .project(&["src", "tgt"]),
        RaExpr::rel("E").join(RaExpr::rel("L").rename(&[("node", "src")])),
        RaExpr::rel("E")
            .rename(&[("src", "a"), ("dst", "b")])
            .join(RaExpr::rel("E").rename(&[("src", "b"), ("dst", "c")]))
            .join(RaExpr::rel("E").rename(&[("src", "c"), ("dst", "a")]))
            .project(&[]),
    ];

    let (instance, adom) = decode_matrix_instance(&db, "n").unwrap();
    let registry = FunctionRegistry::<Nat>::new().with_semiring_ops();
    for query in queries {
        let direct = query.evaluate(&db).unwrap();
        let sig = query.signature(&db).unwrap();
        let expr = ra_to_matlang(&query, &ra_schema, "n").unwrap();
        assert!(fragment_of(&expr) <= Fragment::SumMatlang);
        let matrix = evaluate(&expr, &instance, &registry).unwrap();
        match sig.len() {
            0 => assert_eq!(matrix.as_scalar().unwrap(), direct.annotation(&[])),
            1 => {
                for (idx, &d) in adom.iter().enumerate() {
                    assert_eq!(
                        matrix.get(idx, 0).unwrap(),
                        &direct.annotation(&[(sig[0].as_str(), d)])
                    );
                }
            }
            _ => {
                for (i, &di) in adom.iter().enumerate() {
                    for (j, &dj) in adom.iter().enumerate() {
                        assert_eq!(
                            matrix.get(i, j).unwrap(),
                            &direct.annotation(&[(sig[0].as_str(), di), (sig[1].as_str(), dj)]),
                            "Ψ mismatch at ({di},{dj})"
                        );
                    }
                }
            }
        }
    }
}

fn fo_matlang_suite() -> Vec<Expr> {
    vec![
        Expr::var("A").had(Expr::var("B")),
        Expr::hprod(
            "v",
            "n",
            Expr::var("v").t().mm(Expr::var("A")).mm(Expr::var("v")),
        ),
        Expr::sum(
            "v",
            "n",
            Expr::hprod(
                "w",
                "n",
                Expr::var("v")
                    .t()
                    .mm(Expr::var("A"))
                    .mm(Expr::var("w"))
                    .add(Expr::lit(1.0)),
            ),
        ),
        Expr::var("A").mm(Expr::var("B")).had(Expr::var("B")),
    ]
}

#[test]
fn proposition_6_7_fo_matlang_to_weighted_logic() {
    let schema = square_schema();
    for expr in fo_matlang_suite() {
        for n in [2usize, 3] {
            let instance = nat_instance(n, 31 * n as u64);
            let registry = FunctionRegistry::<Nat>::new().with_semiring_ops();
            let matrix = evaluate(&expr, &instance, &registry).unwrap();
            let structure = encode_instance_as_structure(&schema, &instance).unwrap();
            let formula = matlang_to_wl(&expr, &schema).unwrap();
            for i in 0..matrix.rows() {
                for j in 0..matrix.cols() {
                    let mut sigma = HashMap::new();
                    sigma.insert(ROW_VAR.to_string(), i);
                    sigma.insert(COL_VAR.to_string(), j);
                    let via_wl = formula.evaluate(&structure, &sigma).unwrap();
                    assert_eq!(&via_wl, matrix.get(i, j).unwrap(), "WL mismatch for {expr}");
                }
            }
        }
    }
}

#[test]
fn proposition_6_7_weighted_logic_to_fo_matlang() {
    // A weighted structure with a binary and a unary relation.
    let mut edges: WeightedRelation<Nat> = WeightedRelation::new(2);
    edges.set(vec![0, 1], Nat(2)).unwrap();
    edges.set(vec![1, 2], Nat(3)).unwrap();
    edges.set(vec![2, 0], Nat(1)).unwrap();
    edges.set(vec![2, 2], Nat(4)).unwrap();
    let mut labels: WeightedRelation<Nat> = WeightedRelation::new(1);
    labels.set(vec![0], Nat(2)).unwrap();
    labels.set(vec![2], Nat(5)).unwrap();
    let structure = WeightedStructure::new(3)
        .with_relation("E", edges)
        .with_relation("L", labels);

    let formulas = vec![
        WlFormula::sum(
            "x",
            WlFormula::sum("y", WlFormula::atom("E", vec!["x", "y"])),
        ),
        WlFormula::prod(
            "x",
            WlFormula::sum(
                "y",
                WlFormula::atom("E", vec!["x", "y"]).plus(WlFormula::eq("x", "y")),
            ),
        ),
        WlFormula::sum(
            "x",
            WlFormula::atom("L", vec!["x"]).times(WlFormula::sum(
                "y",
                WlFormula::atom("E", vec!["x", "y"]).times(WlFormula::atom("L", vec!["y"])),
            )),
        ),
        WlFormula::sum(
            "x",
            WlFormula::prod(
                "y",
                WlFormula::eq("x", "y").plus(WlFormula::atom("E", vec!["x", "y"])),
            ),
        ),
    ];
    let (instance, _) = matlang::wl::encode_structure_as_instance(&structure, "n").unwrap();
    let registry = FunctionRegistry::<Nat>::new();
    for formula in formulas {
        let direct = formula.evaluate_closed(&structure).unwrap();
        let expr = wl_to_matlang(&formula, "n");
        assert!(fragment_of(&expr) <= Fragment::FoMatlang);
        let via_ml = evaluate(&expr, &instance, &registry)
            .unwrap()
            .as_scalar()
            .unwrap();
        assert_eq!(via_ml, direct, "Ψ mismatch for {formula}");
    }
}

#[test]
fn equivalences_hold_over_the_tropical_semiring() {
    // Section 6 is parametric in K; exercise the min-plus semiring end to end
    // through the RA⁺_K translation of a shortest-two-hop query.
    let n = 3;
    let weights: Matrix<MinPlus> = Matrix::from_rows(vec![
        vec![MinPlus::infinity(), MinPlus(2.0), MinPlus::infinity()],
        vec![MinPlus::infinity(), MinPlus::infinity(), MinPlus(3.0)],
        vec![MinPlus(1.0), MinPlus::infinity(), MinPlus::infinity()],
    ])
    .unwrap();
    let schema = Schema::new().with_var("A", MatrixType::square("n"));
    let instance = Instance::new()
        .with_dim("n", n)
        .with_matrix("A", weights.clone());
    let two_hop = Expr::var("A").mm(Expr::var("A"));
    let registry = FunctionRegistry::<MinPlus>::new().with_semiring_ops();
    let matrix = evaluate(&two_hop, &instance, &registry).unwrap();
    assert_eq!(matrix.get(0, 2).unwrap(), &MinPlus(5.0));

    let db = encode_instance(&schema, &instance).unwrap();
    let ra = matlang_to_ra(&two_hop, &schema).unwrap();
    let relation = ra.evaluate(&db).unwrap();
    assert_eq!(
        relation.annotation(&[("row_n", 1), ("col_n", 3)]),
        MinPlus(5.0)
    );
}
