//! The textual syntax round-trips through the parser for every expression in
//! the paper's algorithm library (and stays semantically identical, since the
//! parsed AST is structurally equal).

use matlang::algorithms::{csanky, graphs, lu, order, triangular};
use matlang::parser::parse;
use matlang::prelude::*;

fn library() -> Vec<(&'static str, Expr)> {
    vec![
        ("identity", order::identity("n")),
        ("e_min", order::e_min("n")),
        ("e_max", order::e_max("n")),
        ("S_leq", order::s_leq("n")),
        ("S_lt", order::s_lt("n")),
        ("prev", order::prev_matrix("n")),
        ("next_pow", order::next_matrix_pow(Expr::var("p"), "n")),
        ("four_clique", graphs::four_clique("G", "n")),
        ("floyd_warshall", graphs::transitive_closure_fw("G", "n")),
        ("tc_prod", graphs::transitive_closure_prod("G", "n")),
        ("trace", graphs::trace("G", "n")),
        ("diag_product", graphs::diagonal_product("G", "n")),
        ("triangles", graphs::triangle_count("G", "n")),
        ("lu_l", lu::lower_factor("A", "n")),
        ("lu_u", lu::upper_factor("A", "n")),
        ("plu", lu::l_inverse_pivoted("A", "n")),
        ("power_sum", triangular::power_sum(Expr::var("A"), "n")),
        (
            "upper_inverse",
            triangular::upper_triangular_inverse(Expr::var("A"), "n"),
        ),
        ("char_poly", csanky::char_poly_coeffs("A", "n")),
        ("determinant", csanky::determinant("A", "n")),
        ("inverse", csanky::inverse("A", "n")),
    ]
}

#[test]
fn every_library_expression_roundtrips_through_the_parser() {
    for (name, expr) in library() {
        let text = expr.to_string();
        let parsed = parse(&text).unwrap_or_else(|e| panic!("{name}: failed to parse: {e}"));
        assert_eq!(parsed, expr, "{name}: parsed AST differs from the original");
    }
}

#[test]
fn parsed_expressions_still_typecheck_and_classify_identically() {
    let schema = Schema::new()
        .with_var("A", MatrixType::square("n"))
        .with_var("G", MatrixType::square("n"))
        .with_var("p", MatrixType::vector("n"));
    for (name, expr) in library() {
        let parsed = parse(&expr.to_string()).unwrap();
        assert_eq!(
            fragment_of(&parsed),
            fragment_of(&expr),
            "{name}: fragment changed after parsing"
        );
        let original_type = typecheck(&expr, &schema);
        let parsed_type = typecheck(&parsed, &schema);
        assert_eq!(
            original_type, parsed_type,
            "{name}: type changed after parsing"
        );
    }
}

#[test]
fn pretty_printed_size_is_stable_under_reparsing() {
    for (_, expr) in library() {
        let once = parse(&expr.to_string()).unwrap();
        let twice = parse(&once.to_string()).unwrap();
        assert_eq!(once, twice);
        assert_eq!(once.size(), expr.size());
    }
}
